#include "core/batch.h"
#include <algorithm>

#include "common/rng.h"

#include <gtest/gtest.h>

namespace tokenmagic::core {
namespace {

TEST(BatchIndexTest, SingleBatchWhenLambdaLarge) {
  chain::Blockchain bc;
  bc.AddBlock(0, {2, 3});
  bc.AddBlock(1, {1});
  BatchIndex index(bc, 100);
  EXPECT_EQ(index.batch_count(), 1u);
  EXPECT_FALSE(index.batch(0).sealed);  // never reached lambda
  EXPECT_EQ(index.batch(0).tokens.size(), 6u);
}

TEST(BatchIndexTest, BatchesCloseAtLambdaBoundary) {
  chain::Blockchain bc;
  for (int b = 0; b < 6; ++b) bc.AddBlock(b, {2});  // 2 tokens per block
  BatchIndex index(bc, 4);
  // Blocks 0-1 -> batch 0 (4 tokens), 2-3 -> batch 1, 4-5 -> batch 2.
  ASSERT_EQ(index.batch_count(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(index.batch(i).sealed);
    EXPECT_EQ(index.batch(i).tokens.size(), 4u);
    EXPECT_EQ(index.batch(i).first_block, 2 * i);
    EXPECT_EQ(index.batch(i).last_block, 2 * i + 1);
  }
}

TEST(BatchIndexTest, BlockNeverSplitsAcrossBatches) {
  chain::Blockchain bc;
  bc.AddBlock(0, {3});   // 3 tokens
  bc.AddBlock(1, {5});   // pushes past lambda=4: batch closes after blk 1
  bc.AddBlock(2, {1});
  BatchIndex index(bc, 4);
  ASSERT_EQ(index.batch_count(), 2u);
  EXPECT_EQ(index.batch(0).tokens.size(), 8u);  // 3 + 5, indivisible block
  EXPECT_EQ(index.batch(1).tokens.size(), 1u);
}

TEST(BatchIndexTest, TokenLookupAndMixinUniverse) {
  chain::Blockchain bc;
  bc.AddBlock(0, {2});  // tokens 0,1 -> batch 0
  bc.AddBlock(1, {2});  // tokens 2,3 -> batch 1
  BatchIndex index(bc, 2);
  EXPECT_EQ(index.BatchOfToken(0).index, 0u);
  EXPECT_EQ(index.BatchOfToken(3).index, 1u);
  EXPECT_EQ(index.MixinUniverse(1),
            (std::vector<chain::TokenId>{0, 1}));
  EXPECT_EQ(index.MixinUniverse(2),
            (std::vector<chain::TokenId>{2, 3}));
}

TEST(BatchIndexTest, BatchesPartitionAllTokens) {
  chain::Blockchain bc;
  common::Rng rng(5);
  for (int b = 0; b < 20; ++b) {
    std::vector<uint32_t> counts;
    for (int t = 0; t < 3; ++t) {
      counts.push_back(1 + static_cast<uint32_t>(rng.NextBounded(4)));
    }
    bc.AddBlock(b, counts);
  }
  BatchIndex index(bc, 10);
  size_t covered = 0;
  for (size_t i = 0; i < index.batch_count(); ++i) {
    covered += index.batch(i).tokens.size();
    if (i + 1 < index.batch_count()) {
      EXPECT_GE(index.batch(i).tokens.size(), 10u);
      EXPECT_TRUE(index.batch(i).sealed);
    }
  }
  EXPECT_EQ(covered, bc.token_count());
  // Every token maps to the batch that lists it.
  for (chain::TokenId t : bc.AllTokens()) {
    const Batch& batch = index.BatchOfToken(t);
    EXPECT_NE(std::find(batch.tokens.begin(), batch.tokens.end(), t),
              batch.tokens.end());
  }
}

TEST(BatchIndexTest, LambdaOneMakesPerBlockBatches) {
  chain::Blockchain bc;
  bc.AddBlock(0, {1});
  bc.AddBlock(1, {2});
  BatchIndex index(bc, 1);
  EXPECT_EQ(index.batch_count(), 2u);
}

TEST(BatchIndexTest, EmptyChainHasNoBatches) {
  chain::Blockchain bc;
  BatchIndex index(bc, 8);
  EXPECT_EQ(index.batch_count(), 0u);
}

void ExpectSameBatches(const BatchIndex& got, const BatchIndex& want,
                       const chain::Blockchain& bc) {
  ASSERT_EQ(got.batch_count(), want.batch_count());
  for (size_t i = 0; i < want.batch_count(); ++i) {
    EXPECT_EQ(got.batch(i).index, want.batch(i).index);
    EXPECT_EQ(got.batch(i).first_block, want.batch(i).first_block);
    EXPECT_EQ(got.batch(i).last_block, want.batch(i).last_block);
    EXPECT_EQ(got.batch(i).sealed, want.batch(i).sealed);
    EXPECT_EQ(got.batch(i).tokens, want.batch(i).tokens);
  }
  for (chain::TokenId t = 0; t < bc.token_count(); ++t) {
    ASSERT_EQ(got.BatchOfToken(t).index, want.BatchOfToken(t).index);
  }
}

TEST(BatchIndexTest, AppendBlocksMatchesFullRebuildAtEveryHeight) {
  common::Rng rng(42);
  for (uint64_t seed = 0; seed < 20; ++seed) {
    chain::Blockchain bc;
    size_t lambda = 1 + rng.NextBounded(8);
    BatchIndex incremental(bc, lambda);
    for (int b = 0; b < 30; ++b) {
      size_t txs = rng.NextBounded(3);
      std::vector<uint32_t> outputs;
      for (size_t i = 0; i < txs; ++i) {
        outputs.push_back(1 + static_cast<uint32_t>(rng.NextBounded(4)));
      }
      bc.AddBlock(b, outputs);
      // Appending after every block must equal a from-scratch build; a
      // second AppendBlocks with no new blocks must be a no-op.
      incremental.AppendBlocks(bc);
      incremental.AppendBlocks(bc);
      BatchIndex full(bc, lambda);
      ExpectSameBatches(incremental, full, bc);
    }
  }
}

}  // namespace
}  // namespace tokenmagic::core
