#include <gtest/gtest.h>

#include "core/baselines.h"
#include "core/game_theoretic.h"
#include "core/module_greedy.h"
#include "core/progressive.h"

namespace tokenmagic::core {
namespace {

using chain::DiversityRequirement;
using chain::RsView;
using chain::TokenId;
using chain::TxId;

RsView View(chain::RsId id, std::vector<TokenId> members) {
  RsView v;
  v.id = id;
  v.members = std::move(members);
  std::sort(v.members.begin(), v.members.end());
  v.proposed_at = id;
  v.requirement = {1.0, 1};
  return v;
}

/// Paper Example 3 fixture.
/// s1={t1..t6}, s2={t7..t10}, s3={t11,t12}, s4={t13..t15}.
/// HTs: h1:{1,2,7,8}, h2:{3,4,9}, h3:{5,13,14}, h6:{6,10}, h4:{11,15},
/// h5:{12}. Target t11, recursive (1,4)-diversity.
struct Example3 {
  SelectionInput input;
  chain::HtIndex index;
  std::vector<TokenId> universe;
  std::vector<RsView> history;

  Example3() {
    index.Set(1, 1);
    index.Set(2, 1);
    index.Set(7, 1);
    index.Set(8, 1);
    index.Set(3, 2);
    index.Set(4, 2);
    index.Set(9, 2);
    index.Set(5, 3);
    index.Set(13, 3);
    index.Set(14, 3);
    index.Set(6, 6);
    index.Set(10, 6);
    index.Set(11, 4);
    index.Set(15, 4);
    index.Set(12, 5);

    input.target = 11;
    for (TokenId t = 1; t <= 15; ++t) universe.push_back(t);
    history = {View(1, {1, 2, 3, 4, 5, 6}), View(2, {7, 8, 9, 10}),
               View(3, {11, 12}), View(4, {13, 14, 15})};
    input.universe = universe;
    input.history = history;
    input.requirement = {1.0, 4};
    input.index = &index;
    // The worked example applies the raw requirement with no extra
    // configuration checks.
    input.policy.strict_dtrs = false;
    input.policy.check_dtrs_explicitly = false;
    input.policy.check_immutability = false;
  }
};

TEST(GreedyCoverHtsTest, Example3Phase1PicksS2) {
  Example3 fx;
  auto state = InitModuleState(fx.input);
  ASSERT_TRUE(state.ok());
  auto steps = GreedyCoverHts(&*state, fx.index, 4);
  ASSERT_TRUE(steps.ok());
  // r_tau = s3 ∪ s2 after the first loop (paper trace).
  auto members = MaterializeCandidate(state->mu, state->chosen);
  EXPECT_EQ(members, (std::vector<TokenId>{7, 8, 9, 10, 11, 12}));
}

TEST(ProgressiveTest, PaperExample3Trace) {
  Example3 fx;
  ProgressiveSelector selector;
  common::Rng rng(1);
  auto result = selector.Select(fx.input, &rng);
  ASSERT_TRUE(result.ok());
  // Paper: phase 2 adds s4 (beta_4 = 1/3 > beta_1 = -1/6), giving
  // s2 ∪ s3 ∪ s4 = {t7..t15}.
  EXPECT_EQ(result->members,
            (std::vector<TokenId>{7, 8, 9, 10, 11, 12, 13, 14, 15}));
}

TEST(GameTheoreticTest, PaperExample3ReachesS1S3) {
  Example3 fx;
  GameTheoreticSelector selector;
  common::Rng rng(1);
  auto result = selector.Select(fx.input, &rng);
  ASSERT_TRUE(result.ok());
  // Paper Section 6.3: the equilibrium is r_tau = s1 ∪ s3 (8 tokens),
  // strictly smaller than the Progressive result (9 tokens).
  EXPECT_EQ(result->members,
            (std::vector<TokenId>{1, 2, 3, 4, 5, 6, 11, 12}));
}

TEST(SelectorsTest, ResultsAlwaysContainTarget) {
  Example3 fx;
  common::Rng rng(7);
  for (const MixinSelector* selector :
       std::initializer_list<const MixinSelector*>{
           new ProgressiveSelector, new GameTheoreticSelector,
           new SmallestSelector, new RandomSelector}) {
    auto result = selector->Select(fx.input, &rng);
    ASSERT_TRUE(result.ok()) << selector->name();
    EXPECT_TRUE(std::binary_search(result->members.begin(),
                                   result->members.end(), fx.input.target))
        << selector->name();
    delete selector;
  }
}

TEST(SelectorsTest, ResultsSatisfyTheRequirement) {
  Example3 fx;
  common::Rng rng(11);
  ProgressiveSelector progressive;
  GameTheoreticSelector game;
  SmallestSelector smallest;
  RandomSelector random;
  std::vector<const MixinSelector*> selectors = {&progressive, &game,
                                                 &smallest, &random};
  for (const MixinSelector* selector : selectors) {
    auto result = selector->Select(fx.input, &rng);
    ASSERT_TRUE(result.ok()) << selector->name();
    EXPECT_TRUE(analysis::SatisfiesRecursiveDiversity(
        result->members, fx.index, fx.input.requirement))
        << selector->name();
  }
}

TEST(SelectorsTest, GameNeverLargerThanProgressiveOnExample3) {
  Example3 fx;
  common::Rng rng(13);
  ProgressiveSelector progressive;
  GameTheoreticSelector game;
  auto p = progressive.Select(fx.input, &rng);
  auto g = game.Select(fx.input, &rng);
  ASSERT_TRUE(p.ok());
  ASSERT_TRUE(g.ok());
  EXPECT_LE(g->members.size(), p->members.size());
}

TEST(SelectorsTest, UnsatisfiableUniverseReported) {
  // Universe with a single HT can never reach 4 distinct HTs.
  chain::HtIndex idx;
  for (TokenId t = 1; t <= 5; ++t) idx.Set(t, 1);
  SelectionInput input;
  input.target = 1;
  std::vector<TokenId> universe = {1, 2, 3, 4, 5};
  input.universe = universe;
  input.requirement = {1.0, 4};
  input.index = &idx;
  input.policy.strict_dtrs = false;
  common::Rng rng(1);
  ProgressiveSelector progressive;
  GameTheoreticSelector game;
  SmallestSelector smallest;
  RandomSelector random;
  std::vector<const MixinSelector*> selectors = {&progressive, &game,
                                                 &smallest, &random};
  for (const MixinSelector* selector : selectors) {
    auto result = selector->Select(input, &rng);
    EXPECT_FALSE(result.ok()) << selector->name();
    EXPECT_TRUE(result.status().IsUnsatisfiable()) << selector->name();
  }
}

TEST(SelectorsTest, TargetOutsideUniverseIsInvalid) {
  chain::HtIndex idx;
  idx.Set(1, 1);
  SelectionInput input;
  input.target = 99;
  std::vector<TokenId> universe = {1};
  input.universe = universe;
  input.requirement = {1.0, 1};
  input.index = &idx;
  common::Rng rng(1);
  ProgressiveSelector selector;
  EXPECT_TRUE(selector.Select(input, &rng).status().IsInvalidArgument());
}

TEST(SelectorsTest, MissingIndexIsInvalid) {
  SelectionInput input;
  input.target = 1;
  std::vector<TokenId> universe = {1};
  input.universe = universe;
  common::Rng rng(1);
  ProgressiveSelector selector;
  EXPECT_TRUE(selector.Select(input, &rng).status().IsInvalidArgument());
}

TEST(SmallestTest, PrefersSmallModules) {
  // Modules: fresh tokens (size 1) with distinct HTs vs a big super RS.
  chain::HtIndex idx;
  for (TokenId t = 1; t <= 10; ++t) {
    idx.Set(t, static_cast<TxId>(t));  // all distinct HTs
  }
  SelectionInput input;
  input.target = 1;
  std::vector<TokenId> universe;
  for (TokenId t = 1; t <= 10; ++t) universe.push_back(t);
  input.universe = universe;
  std::vector<RsView> history = {View(0, {5, 6, 7, 8, 9, 10})};
  input.history = history;  // one big super RS
  input.requirement = {2.0, 3};
  input.index = &idx;
  input.policy.strict_dtrs = false;
  common::Rng rng(1);
  SmallestSelector selector;
  auto result = selector.Select(input, &rng);
  ASSERT_TRUE(result.ok());
  // Needs 3 distinct HTs; fresh tokens 2,3 (size 1 each) beat the
  // 6-token super RS: members = {1, 2, 3}.
  EXPECT_EQ(result->members.size(), 3u);
}

TEST(RandomTest, IsSeedDeterministic) {
  Example3 fx;
  RandomSelector selector;
  common::Rng rng1(99), rng2(99);
  auto r1 = selector.Select(fx.input, &rng1);
  auto r2 = selector.Select(fx.input, &rng2);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1->members, r2->members);
}

TEST(MoneroSelectorTest, ProducesFixedSizeRing) {
  chain::HtIndex idx;
  SelectionInput input;
  std::vector<TokenId> universe;
  for (TokenId t = 0; t < 100; ++t) {
    idx.Set(t, static_cast<TxId>(t / 2));
    universe.push_back(t);
  }
  input.universe = universe;
  input.target = 50;
  input.index = &idx;
  common::Rng rng(3);
  MoneroSelector selector(11);
  auto result = selector.Select(input, &rng);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->members.size(), 11u);
  EXPECT_TRUE(std::binary_search(result->members.begin(),
                                 result->members.end(), TokenId{50}));
}

TEST(GameTheoreticTest, FallsBackToFeasibleProfileOnNonMonotoneInstance) {
  // A universe where the whole-universe profile violates the diversity
  // requirement (one dominant HT) but a careful subset satisfies it:
  // the raw accretion dynamics plateau infeasibly and the Progressive
  // restart must rescue the game.
  chain::HtIndex idx;
  // 12 tokens of HT 0 (dominant), plus 8 singleton HTs.
  for (TokenId t = 0; t < 12; ++t) idx.Set(t, 0);
  for (TokenId t = 12; t < 20; ++t) idx.Set(t, static_cast<TxId>(t));
  SelectionInput input;
  std::vector<TokenId> universe;
  for (TokenId t = 0; t < 20; ++t) universe.push_back(t);
  input.universe = universe;
  // One super RS holding most of the dominant-HT tokens so choosing it
  // wrecks diversity.
  std::vector<RsView> history = {View(0, {0, 1, 2, 3, 4, 5, 6, 7, 8, 9})};
  input.history = history;
  input.target = 12;
  input.requirement = {1.0, 4};
  input.index = &idx;
  input.policy.strict_dtrs = false;
  // Whole universe: q1 = 12, tail(4) = sum of ranks >= 4 over 9 HTs of
  // frequency 1 => 12 < 1*6? No: infeasible. Subset of singletons only:
  // q1 = 1 < 1*(theta - 3): feasible for theta >= 5.
  common::Rng rng(5);
  GameTheoreticSelector game;
  auto result = game.Select(input, &rng);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(analysis::SatisfiesRecursiveDiversity(
      result->members, idx, input.requirement));
  // The dominant super RS must have been left out.
  EXPECT_FALSE(std::binary_search(result->members.begin(),
                                  result->members.end(), TokenId{0}));
}

TEST(MoneroSelectorTest, SmallUniverseUnsatisfiable) {
  chain::HtIndex idx;
  SelectionInput input;
  std::vector<TokenId> universe;
  for (TokenId t = 0; t < 5; ++t) {
    idx.Set(t, 0);
    universe.push_back(t);
  }
  input.universe = universe;
  input.target = 0;
  input.index = &idx;
  common::Rng rng(3);
  MoneroSelector selector(11);
  EXPECT_TRUE(selector.Select(input, &rng).status().IsUnsatisfiable());
}

}  // namespace
}  // namespace tokenmagic::core
