#include "core/modules.h"

#include <gtest/gtest.h>

#include "analysis/context.h"
#include "common/rng.h"

namespace tokenmagic::core {
namespace {

using chain::RsId;
using chain::RsView;
using chain::TokenId;

RsView View(RsId id, std::vector<TokenId> members,
            chain::Timestamp at = 0) {
  RsView v;
  v.id = id;
  v.members = std::move(members);
  std::sort(v.members.begin(), v.members.end());
  v.proposed_at = at == 0 ? id : at;
  return v;
}

// Paper Section 6.1 example: r1={t1,t2}@π, r2={t1,t2,t3}@π+1,
// r3={t4,t5}@π+2, T={t1..t6}. Super RSs: r2 (v=2) and r3 (v=1); t6 fresh.
TEST(ModuleUniverseTest, PaperSection61Example) {
  std::vector<TokenId> universe = {1, 2, 3, 4, 5, 6};
  std::vector<RsView> history = {View(1, {1, 2}, 10), View(2, {1, 2, 3}, 11),
                                 View(3, {4, 5}, 12)};
  auto mu = ModuleUniverse::Build(universe, history);
  ASSERT_TRUE(mu.ok());

  auto supers = mu->SuperRsModuleIndices();
  ASSERT_EQ(supers.size(), 2u);
  const Module& m2 = mu->module(mu->ModuleOfToken(3));
  EXPECT_EQ(m2.super_rs, 2u);
  EXPECT_EQ(m2.subset_count, 2u);  // r1 and r2
  const Module& m3 = mu->module(mu->ModuleOfToken(4));
  EXPECT_EQ(m3.super_rs, 3u);
  EXPECT_EQ(m3.subset_count, 1u);

  auto fresh = mu->FreshModuleIndices();
  ASSERT_EQ(fresh.size(), 1u);
  EXPECT_EQ(mu->module(fresh[0]).tokens, (std::vector<TokenId>{6}));
  EXPECT_TRUE(mu->module(fresh[0]).is_fresh);
  EXPECT_EQ(mu->token_count(), 6u);
}

TEST(ModuleUniverseTest, EmptyHistoryIsAllFresh) {
  std::vector<TokenId> universe = {1, 2, 3};
  auto mu = ModuleUniverse::Build(universe, {});
  ASSERT_TRUE(mu.ok());
  EXPECT_EQ(mu->FreshModuleIndices().size(), 3u);
  EXPECT_TRUE(mu->SuperRsModuleIndices().empty());
}

TEST(ModuleUniverseTest, RejectsPartialOverlap) {
  // {1,2} and {2,3} violate the first practical configuration.
  std::vector<TokenId> universe = {1, 2, 3};
  std::vector<RsView> history = {View(0, {1, 2}), View(1, {2, 3})};
  auto mu = ModuleUniverse::Build(universe, history);
  EXPECT_FALSE(mu.ok());
  EXPECT_TRUE(mu.status().IsInvalidArgument());
}

TEST(ModuleUniverseTest, RejectsTokensOutsideUniverse) {
  std::vector<TokenId> universe = {1, 2};
  std::vector<RsView> history = {View(0, {1, 2, 99})};
  auto mu = ModuleUniverse::Build(universe, history);
  EXPECT_FALSE(mu.ok());
  EXPECT_TRUE(mu.status().IsInvalidArgument());
}

TEST(ModuleUniverseTest, NestedChainsCollapseToLatestSuper) {
  // r0 ⊂ r1 ⊂ r2: only r2 is a super RS, with subset count 3.
  std::vector<RsView> history = {View(0, {1}, 1), View(1, {1, 2}, 2),
                                 View(2, {1, 2, 3}, 3)};
  std::vector<TokenId> universe = {1, 2, 3, 4};
  auto mu = ModuleUniverse::Build(universe, history);
  ASSERT_TRUE(mu.ok());
  auto supers = mu->SuperRsModuleIndices();
  ASSERT_EQ(supers.size(), 1u);
  EXPECT_EQ(mu->module(supers[0]).super_rs, 2u);
  EXPECT_EQ(mu->module(supers[0]).subset_count, 3u);
  EXPECT_EQ(mu->SubsetRsOf(supers[0]).size(), 3u);
  EXPECT_EQ(mu->FreshModuleIndices().size(), 1u);  // token 4
}

TEST(ModuleUniverseTest, EqualSetsLaterWins) {
  // Two identical RSs: the later one is the super RS (Def. 7 excludes an
  // RS that a later superset covers; ⊇ includes equality).
  std::vector<RsView> history = {View(0, {1, 2}, 1), View(1, {1, 2}, 2)};
  std::vector<TokenId> universe = {1, 2};
  auto mu = ModuleUniverse::Build(universe, history);
  ASSERT_TRUE(mu.ok());
  auto supers = mu->SuperRsModuleIndices();
  ASSERT_EQ(supers.size(), 1u);
  EXPECT_EQ(mu->module(supers[0]).super_rs, 1u);
  EXPECT_EQ(mu->module(supers[0]).subset_count, 2u);
}

TEST(ModuleUniverseTest, ModuleOfTokenCoversEveryToken) {
  std::vector<RsView> history = {View(0, {1, 2}), View(1, {3, 4, 5})};
  std::vector<TokenId> universe = {1, 2, 3, 4, 5, 6, 7};
  auto mu = ModuleUniverse::Build(universe, history);
  ASSERT_TRUE(mu.ok());
  for (TokenId t : {1, 2, 3, 4, 5, 6, 7}) {
    size_t index = mu->ModuleOfToken(t);
    const Module& module = mu->module(index);
    EXPECT_NE(std::find(module.tokens.begin(), module.tokens.end(), t),
              module.tokens.end());
  }
}

void ExpectSameUniverse(const ModuleUniverse& legacy,
                        const ModuleUniverse& fast, int trial) {
  ASSERT_EQ(legacy.module_count(), fast.module_count()) << "trial " << trial;
  EXPECT_EQ(legacy.token_count(), fast.token_count()) << "trial " << trial;
  for (size_t i = 0; i < legacy.module_count(); ++i) {
    const Module& a = legacy.module(i);
    const Module& b = fast.module(i);
    EXPECT_EQ(a.index, b.index) << "trial " << trial << " module " << i;
    EXPECT_EQ(a.is_fresh, b.is_fresh) << "trial " << trial << " module " << i;
    EXPECT_EQ(a.super_rs, b.super_rs) << "trial " << trial << " module " << i;
    EXPECT_EQ(a.tokens, b.tokens) << "trial " << trial << " module " << i;
    EXPECT_EQ(a.subset_count, b.subset_count)
        << "trial " << trial << " module " << i;
    EXPECT_EQ(legacy.SubsetRsOf(i), fast.SubsetRsOf(i))
        << "trial " << trial << " module " << i;
  }
  for (size_t i = 0; i < legacy.module_count(); ++i) {
    for (TokenId t : legacy.module(i).tokens) {
      EXPECT_EQ(legacy.ModuleOfToken(t), fast.ModuleOfToken(t))
          << "trial " << trial << " token " << t;
    }
  }
}

// The context-aware Build replaces the O(|history|²) configuration check
// and the per-super subset scans with inverted-index walks; the output
// must be byte-identical to the legacy path on random laminar histories.
TEST(ModuleUniverseTest, ContextBuildMatchesLegacyOnRandomHistories) {
  common::Rng rng(20260806);
  for (int trial = 0; trial < 100; ++trial) {
    size_t num_tokens = 6 + rng.NextBounded(30);
    std::vector<TokenId> universe;
    chain::HtIndex index;
    for (TokenId t = 0; t < static_cast<TokenId>(num_tokens); ++t) {
      universe.push_back(t);
      index.Set(t, 100 + rng.NextBounded(5));
    }

    // Laminar history: partition the tokens into groups, then grow a
    // nested prefix chain inside each group so later RSs are supersets.
    std::vector<RsView> history;
    RsId next_id = 5;
    TokenId cursor = 0;
    while (cursor < static_cast<TokenId>(num_tokens)) {
      size_t group = 1 + rng.NextBounded(5);
      group = std::min<size_t>(group, num_tokens - cursor);
      size_t chain_len = rng.NextBounded(4);
      for (size_t c = 0; c < chain_len; ++c) {
        size_t prefix = 1 + rng.NextBounded(group);
        std::vector<TokenId> members;
        for (size_t k = 0; k < prefix; ++k) {
          members.push_back(cursor + static_cast<TokenId>(k));
        }
        history.push_back(View(next_id, members,
                               static_cast<chain::Timestamp>(
                                   1 + rng.NextBounded(6))));
        next_id += 2;
      }
      cursor += static_cast<TokenId>(group);
    }

    auto legacy = ModuleUniverse::Build(universe, history);
    ASSERT_TRUE(legacy.ok()) << "trial " << trial;
    analysis::AnalysisContext context =
        analysis::AnalysisContext::Build(history, &index, universe);
    auto fast = ModuleUniverse::Build(universe, history, context);
    ASSERT_TRUE(fast.ok()) << "trial " << trial;
    ExpectSameUniverse(*legacy, *fast, trial);
  }
}

TEST(ModuleUniverseTest, ContextBuildRejectsLikeLegacy) {
  // Partial overlap: the fast path detects it via the inverted index and
  // defers to the pairwise scan, so the diagnostics match exactly.
  std::vector<TokenId> universe = {1, 2, 3};
  std::vector<RsView> history = {View(0, {1, 2}), View(1, {2, 3})};
  analysis::AnalysisContext context =
      analysis::AnalysisContext::Build(history, nullptr, universe);
  auto legacy = ModuleUniverse::Build(universe, history);
  auto fast = ModuleUniverse::Build(universe, history, context);
  ASSERT_FALSE(fast.ok());
  EXPECT_TRUE(fast.status().IsInvalidArgument());
  EXPECT_EQ(legacy.status().message(), fast.status().message());

  // Token outside the universe.
  std::vector<TokenId> small_universe = {1, 2};
  std::vector<RsView> outside = {View(0, {1, 2, 99})};
  analysis::AnalysisContext outside_context =
      analysis::AnalysisContext::Build(outside, nullptr, small_universe);
  auto legacy_outside = ModuleUniverse::Build(small_universe, outside);
  auto fast_outside =
      ModuleUniverse::Build(small_universe, outside, outside_context);
  ASSERT_FALSE(fast_outside.ok());
  EXPECT_TRUE(fast_outside.status().IsInvalidArgument());
  EXPECT_EQ(legacy_outside.status().message(),
            fast_outside.status().message());
}

TEST(ModuleUniverseTest, ModuleIndicesAreDense) {
  std::vector<RsView> history = {View(0, {1, 2})};
  std::vector<TokenId> universe = {1, 2, 3};
  auto mu = ModuleUniverse::Build(universe, history);
  ASSERT_TRUE(mu.ok());
  for (size_t i = 0; i < mu->module_count(); ++i) {
    EXPECT_EQ(mu->module(i).index, i);
  }
}

}  // namespace
}  // namespace tokenmagic::core
