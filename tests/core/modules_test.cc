#include "core/modules.h"

#include <gtest/gtest.h>

namespace tokenmagic::core {
namespace {

using chain::RsId;
using chain::RsView;
using chain::TokenId;

RsView View(RsId id, std::vector<TokenId> members,
            chain::Timestamp at = 0) {
  RsView v;
  v.id = id;
  v.members = std::move(members);
  std::sort(v.members.begin(), v.members.end());
  v.proposed_at = at == 0 ? id : at;
  return v;
}

// Paper Section 6.1 example: r1={t1,t2}@π, r2={t1,t2,t3}@π+1,
// r3={t4,t5}@π+2, T={t1..t6}. Super RSs: r2 (v=2) and r3 (v=1); t6 fresh.
TEST(ModuleUniverseTest, PaperSection61Example) {
  std::vector<TokenId> universe = {1, 2, 3, 4, 5, 6};
  std::vector<RsView> history = {View(1, {1, 2}, 10), View(2, {1, 2, 3}, 11),
                                 View(3, {4, 5}, 12)};
  auto mu = ModuleUniverse::Build(universe, history);
  ASSERT_TRUE(mu.ok());

  auto supers = mu->SuperRsModuleIndices();
  ASSERT_EQ(supers.size(), 2u);
  const Module& m2 = mu->module(mu->ModuleOfToken(3));
  EXPECT_EQ(m2.super_rs, 2u);
  EXPECT_EQ(m2.subset_count, 2u);  // r1 and r2
  const Module& m3 = mu->module(mu->ModuleOfToken(4));
  EXPECT_EQ(m3.super_rs, 3u);
  EXPECT_EQ(m3.subset_count, 1u);

  auto fresh = mu->FreshModuleIndices();
  ASSERT_EQ(fresh.size(), 1u);
  EXPECT_EQ(mu->module(fresh[0]).tokens, (std::vector<TokenId>{6}));
  EXPECT_TRUE(mu->module(fresh[0]).is_fresh);
  EXPECT_EQ(mu->token_count(), 6u);
}

TEST(ModuleUniverseTest, EmptyHistoryIsAllFresh) {
  auto mu = ModuleUniverse::Build({1, 2, 3}, {});
  ASSERT_TRUE(mu.ok());
  EXPECT_EQ(mu->FreshModuleIndices().size(), 3u);
  EXPECT_TRUE(mu->SuperRsModuleIndices().empty());
}

TEST(ModuleUniverseTest, RejectsPartialOverlap) {
  // {1,2} and {2,3} violate the first practical configuration.
  auto mu = ModuleUniverse::Build({1, 2, 3},
                                  {View(0, {1, 2}), View(1, {2, 3})});
  EXPECT_FALSE(mu.ok());
  EXPECT_TRUE(mu.status().IsInvalidArgument());
}

TEST(ModuleUniverseTest, RejectsTokensOutsideUniverse) {
  auto mu = ModuleUniverse::Build({1, 2}, {View(0, {1, 2, 99})});
  EXPECT_FALSE(mu.ok());
  EXPECT_TRUE(mu.status().IsInvalidArgument());
}

TEST(ModuleUniverseTest, NestedChainsCollapseToLatestSuper) {
  // r0 ⊂ r1 ⊂ r2: only r2 is a super RS, with subset count 3.
  std::vector<RsView> history = {View(0, {1}, 1), View(1, {1, 2}, 2),
                                 View(2, {1, 2, 3}, 3)};
  auto mu = ModuleUniverse::Build({1, 2, 3, 4}, history);
  ASSERT_TRUE(mu.ok());
  auto supers = mu->SuperRsModuleIndices();
  ASSERT_EQ(supers.size(), 1u);
  EXPECT_EQ(mu->module(supers[0]).super_rs, 2u);
  EXPECT_EQ(mu->module(supers[0]).subset_count, 3u);
  EXPECT_EQ(mu->SubsetRsOf(supers[0]).size(), 3u);
  EXPECT_EQ(mu->FreshModuleIndices().size(), 1u);  // token 4
}

TEST(ModuleUniverseTest, EqualSetsLaterWins) {
  // Two identical RSs: the later one is the super RS (Def. 7 excludes an
  // RS that a later superset covers; ⊇ includes equality).
  std::vector<RsView> history = {View(0, {1, 2}, 1), View(1, {1, 2}, 2)};
  auto mu = ModuleUniverse::Build({1, 2}, history);
  ASSERT_TRUE(mu.ok());
  auto supers = mu->SuperRsModuleIndices();
  ASSERT_EQ(supers.size(), 1u);
  EXPECT_EQ(mu->module(supers[0]).super_rs, 1u);
  EXPECT_EQ(mu->module(supers[0]).subset_count, 2u);
}

TEST(ModuleUniverseTest, ModuleOfTokenCoversEveryToken) {
  std::vector<RsView> history = {View(0, {1, 2}), View(1, {3, 4, 5})};
  auto mu = ModuleUniverse::Build({1, 2, 3, 4, 5, 6, 7}, history);
  ASSERT_TRUE(mu.ok());
  for (TokenId t : {1, 2, 3, 4, 5, 6, 7}) {
    size_t index = mu->ModuleOfToken(t);
    const Module& module = mu->module(index);
    EXPECT_NE(std::find(module.tokens.begin(), module.tokens.end(), t),
              module.tokens.end());
  }
}

TEST(ModuleUniverseTest, ModuleIndicesAreDense) {
  std::vector<RsView> history = {View(0, {1, 2})};
  auto mu = ModuleUniverse::Build({1, 2, 3}, history);
  ASSERT_TRUE(mu.ok());
  for (size_t i = 0; i < mu->module_count(); ++i) {
    EXPECT_EQ(mu->module(i).index, i);
  }
}

}  // namespace
}  // namespace tokenmagic::core
