#include "core/bfs.h"

#include <gtest/gtest.h>

#include "analysis/chain_reaction.h"
#include "analysis/diversity.h"

namespace tokenmagic::core {
namespace {

using chain::DiversityRequirement;
using chain::RsView;
using chain::TokenId;

RsView View(chain::RsId id, std::vector<TokenId> members,
            DiversityRequirement req = {2.0, 1}) {
  RsView v;
  v.id = id;
  v.members = std::move(members);
  std::sort(v.members.begin(), v.members.end());
  v.proposed_at = id;
  v.requirement = req;
  return v;
}

chain::HtIndex IdentityIndex(TokenId first, TokenId last) {
  chain::HtIndex idx;
  for (TokenId t = first; t <= last; ++t) {
    idx.Set(t, static_cast<chain::TxId>(t));
  }
  return idx;
}

// Paper Example 1: tokens t1..t4; r1 = r2 = {t1, t2}; t1, t3 share HT h1.
// Generating for t3 must avoid {t1,t3} (homogeneity), {t2,t3} (chain
// reaction), and the paper points to {t3, t4} as a good minimal answer.
TEST(BfsTest, PaperExample1FindsGoodSolution) {
  chain::HtIndex idx;
  idx.Set(1, 100);  // h1
  idx.Set(3, 100);  // h1
  idx.Set(2, 200);
  idx.Set(4, 300);
  SelectionInput input;
  input.target = 3;
  std::vector<TokenId> universe = {1, 2, 3, 4};
  std::vector<RsView> history = {View(1, {1, 2}), View(2, {1, 2})};
  input.universe = universe;
  input.history = history;
  input.requirement = {2.0, 2};
  input.index = &idx;
  common::Rng rng(1);
  BfsSelector selector;
  auto result = selector.Select(input, &rng);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->members, (std::vector<TokenId>{3, 4}));
}

TEST(BfsTest, ReturnsMinimumSizeSolution) {
  // No history: any 2 distinct-HT tokens satisfy (2.0, 2); BFS must
  // return exactly 2 members (target + 1 mixin).
  chain::HtIndex idx = IdentityIndex(1, 6);
  SelectionInput input;
  input.target = 1;
  std::vector<TokenId> universe = {1, 2, 3, 4, 5, 6};
  input.universe = universe;
  input.requirement = {2.0, 2};
  input.index = &idx;
  common::Rng rng(1);
  BfsSelector selector;
  auto result = selector.Select(input, &rng);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->members.size(), 2u);
}

TEST(BfsTest, ResultPassesExactNonEliminationCheck) {
  chain::HtIndex idx = IdentityIndex(1, 8);
  SelectionInput input;
  input.target = 5;
  std::vector<TokenId> universe = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<RsView> history = {View(0, {1, 2}), View(1, {2, 3})};
  input.universe = universe;
  input.history = history;
  input.requirement = {2.0, 2};
  input.index = &idx;
  common::Rng rng(1);
  BfsSelector selector;
  auto result = selector.Select(input, &rng);
  ASSERT_TRUE(result.ok());

  // Re-run the adversary on history + the new RS: nothing eliminated.
  std::vector<RsView> after = history;
  after.push_back(View(99, result->members, input.requirement));
  auto analysis = analysis::ChainReactionAnalyzer::Analyze(after);
  EXPECT_TRUE(analysis.NoTokenEliminated());
}

TEST(BfsTest, RespectsDiversityRequirement) {
  chain::HtIndex idx;
  // Tokens 1-4 from h1; 5-8 distinct.
  for (TokenId t = 1; t <= 4; ++t) idx.Set(t, 100);
  for (TokenId t = 5; t <= 8; ++t) idx.Set(t, static_cast<chain::TxId>(t));
  SelectionInput input;
  input.target = 1;
  std::vector<TokenId> universe = {1, 2, 3, 4, 5, 6, 7, 8};
  input.universe = universe;
  input.requirement = {1.5, 2};
  input.index = &idx;
  common::Rng rng(1);
  BfsSelector selector;
  auto result = selector.Select(input, &rng);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(analysis::SatisfiesRecursiveDiversity(result->members, idx,
                                                    input.requirement));
}

TEST(BfsTest, UnsatisfiableWhenUniverseTooHomogeneous) {
  chain::HtIndex idx;
  for (TokenId t = 1; t <= 4; ++t) idx.Set(t, 100);
  SelectionInput input;
  input.target = 1;
  std::vector<TokenId> universe = {1, 2, 3, 4};
  input.universe = universe;
  input.requirement = {1.0, 2};
  input.index = &idx;
  common::Rng rng(1);
  BfsSelector selector;
  auto result = selector.Select(input, &rng);
  EXPECT_TRUE(result.status().IsUnsatisfiable());
}

TEST(BfsTest, UniverseCapRejectsHugeInstances) {
  chain::HtIndex idx = IdentityIndex(1, 30);
  SelectionInput input;
  input.target = 1;
  std::vector<TokenId> universe;
  for (TokenId t = 1; t <= 30; ++t) universe.push_back(t);
  input.universe = universe;
  input.requirement = {2.0, 2};
  input.index = &idx;
  BfsSelector::Options options;
  options.max_universe = 20;
  BfsSelector selector(options);
  common::Rng rng(1);
  EXPECT_TRUE(selector.Select(input, &rng).status().IsInvalidArgument());
}

TEST(BfsTest, BudgetExpiryReturnsTimeout) {
  // A large universe with an unsatisfiable requirement forces the search
  // to exhaust the time budget.
  chain::HtIndex idx;
  for (TokenId t = 1; t <= 18; ++t) idx.Set(t, 100);  // single HT
  SelectionInput input;
  input.target = 1;
  std::vector<TokenId> universe;
  for (TokenId t = 1; t <= 18; ++t) universe.push_back(t);
  input.universe = universe;
  input.requirement = {1.0, 2};
  input.index = &idx;
  BfsSelector::Options options;
  options.budget_seconds = 0.05;
  BfsSelector selector(options);
  common::Rng rng(1);
  auto result = selector.Select(input, &rng);
  // Either proves unsatisfiable quickly or times out; both are accepted
  // terminal states, never a crash.
  EXPECT_FALSE(result.ok());
}

TEST(BfsTest, MatchesPracticalSelectorsOnEasyInstance) {
  // On an instance with no history the optimal size is determined by the
  // diversity requirement alone; BFS gives a certified minimum.
  chain::HtIndex idx = IdentityIndex(1, 10);
  SelectionInput input;
  input.target = 2;
  std::vector<TokenId> universe;
  for (TokenId t = 1; t <= 10; ++t) universe.push_back(t);
  input.universe = universe;
  input.requirement = {1.5, 3};
  input.index = &idx;
  common::Rng rng(1);
  BfsSelector bfs;
  auto exact = bfs.Select(input, &rng);
  ASSERT_TRUE(exact.ok());
  // (1.5, 3) over singleton HTs: need q1=1 < 1.5*(theta-2) -> theta >= 3.
  EXPECT_EQ(exact->members.size(), 3u);
}

}  // namespace
}  // namespace tokenmagic::core
