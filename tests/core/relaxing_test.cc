#include "core/relaxing.h"

#include <gtest/gtest.h>

#include "core/progressive.h"

namespace tokenmagic::core {
namespace {

using chain::DiversityRequirement;
using chain::TokenId;

chain::HtIndex TwoHtIndex() {
  // Tokens 1-4 from HT 100, tokens 5-6 from HT 200: only 2 distinct HTs.
  chain::HtIndex idx;
  for (TokenId t = 1; t <= 4; ++t) idx.Set(t, 100);
  for (TokenId t = 5; t <= 6; ++t) idx.Set(t, 200);
  return idx;
}

SelectionInput TwoHtInput(const chain::HtIndex* idx,
                          DiversityRequirement req) {
  SelectionInput input;
  input.target = 1;
  static const std::vector<TokenId> kUniverse = {1, 2, 3, 4, 5, 6};
  input.universe = kUniverse;
  input.requirement = req;
  input.index = idx;
  input.policy.strict_dtrs = false;
  return input;
}

TEST(RelaxingTest, NoRelaxationWhenFeasible) {
  chain::HtIndex idx = TwoHtIndex();
  // (3.0, 2): feasible directly.
  SelectionInput input = TwoHtInput(&idx, {3.0, 2});
  ProgressiveSelector inner;
  RelaxingSelector relaxing(&inner);
  common::Rng rng(1);
  auto result = relaxing.Select(input, &rng);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->relaxation_steps, 0);
  EXPECT_EQ(result->used_requirement, (DiversityRequirement{3.0, 2}));
}

TEST(RelaxingTest, RelaxesEllWhenUniverseTooNarrow) {
  chain::HtIndex idx = TwoHtIndex();
  // ell = 4 can never be met (only 2 HTs exist); the schedule must step
  // ell down (and c up) until feasible.
  SelectionInput input = TwoHtInput(&idx, {3.0, 4});
  ProgressiveSelector inner;
  RelaxingSelector relaxing(&inner);
  common::Rng rng(1);
  auto result = relaxing.Select(input, &rng);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->relaxation_steps, 0);
  EXPECT_LE(result->used_requirement.ell, 2);
  // The returned members satisfy the relaxed requirement.
  EXPECT_TRUE(analysis::SatisfiesRecursiveDiversity(
      result->result.members, idx, result->used_requirement));
}

TEST(RelaxingTest, RelaxesCWhenTooTight) {
  chain::HtIndex idx = TwoHtIndex();
  // (0.01, 2): ell is attainable but c makes it unsatisfiable: relax c.
  SelectionInput input = TwoHtInput(&idx, {0.01, 2});
  ProgressiveSelector inner;
  RelaxingSelector relaxing(&inner);
  common::Rng rng(1);
  auto result = relaxing.Select(input, &rng);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->used_requirement.c, 0.01);
}

TEST(RelaxingTest, UnsatisfiableAtFloorIsReported) {
  // One single HT: even (c_max, 1) cannot produce q1 < c*q1 with a lone
  // HT... actually (c>1, 1) gives q1 < c*q1 which holds. So use an empty
  // mixin structure trick: requirement floor ell_min=2 with 1 HT.
  chain::HtIndex idx;
  for (TokenId t = 1; t <= 3; ++t) idx.Set(t, 100);
  SelectionInput input;
  input.target = 1;
  std::vector<TokenId> universe = {1, 2, 3};
  input.universe = universe;
  input.requirement = {0.5, 4};
  input.index = &idx;
  input.policy.strict_dtrs = false;
  ProgressiveSelector inner;
  RelaxationPolicy policy;
  policy.ell_min = 2;  // never reaches the trivially-satisfiable ell=1
  RelaxingSelector relaxing(&inner, policy);
  common::Rng rng(1);
  auto result = relaxing.Select(input, &rng);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsUnsatisfiable());
}

TEST(RelaxingTest, ScheduleAlternatesAndRespectsFloors) {
  ProgressiveSelector inner;
  RelaxationPolicy policy;
  policy.c_growth = 2.0;
  policy.c_max = 4.0;
  policy.ell_min = 1;
  RelaxingSelector relaxing(&inner, policy);
  auto schedule = relaxing.Schedule({1.0, 3});
  ASSERT_GE(schedule.size(), 4u);
  EXPECT_EQ(schedule[0], (DiversityRequirement{1.0, 3}));
  // First step relaxes c, second relaxes ell, alternating.
  EXPECT_DOUBLE_EQ(schedule[1].c, 2.0);
  EXPECT_EQ(schedule[1].ell, 3);
  EXPECT_EQ(schedule[2].ell, 2);
  for (const auto& req : schedule) {
    EXPECT_LE(req.c, policy.c_max);
    EXPECT_GE(req.ell, policy.ell_min);
  }
  // Terminates: last entry is at both floors.
  EXPECT_DOUBLE_EQ(schedule.back().c, 4.0);
  EXPECT_EQ(schedule.back().ell, 1);
}

TEST(RelaxingTest, NonUnsatisfiableErrorsPassThrough) {
  ProgressiveSelector inner;
  RelaxingSelector relaxing(&inner);
  SelectionInput input;  // missing index -> InvalidArgument
  input.target = 1;
  std::vector<TokenId> universe = {1};
  input.universe = universe;
  common::Rng rng(1);
  auto result = relaxing.Select(input, &rng);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

}  // namespace
}  // namespace tokenmagic::core
