#include "core/token_magic.h"

#include <gtest/gtest.h>

#include "analysis/chain_reaction.h"
#include "core/baselines.h"
#include "core/progressive.h"

namespace tokenmagic::core {
namespace {

using chain::DiversityRequirement;

/// A chain whose tokens all come from distinct transactions: 4 blocks of
/// 8 single-output transactions each, lambda 16 -> 2 batches of 16.
chain::Blockchain MakeChain() {
  chain::Blockchain bc;
  for (int b = 0; b < 4; ++b) {
    std::vector<uint32_t> counts(8, 1);
    bc.AddBlock(b, counts);
  }
  return bc;
}

TEST(TokenMagicTest, InstanceForBuildsBatchLocalUniverse) {
  chain::Blockchain bc = MakeChain();
  TokenMagicConfig config;
  config.lambda = 16;
  TokenMagic tm(&bc, config);
  auto instance = tm.InstanceFor(0, {2.0, 2});
  ASSERT_TRUE(instance.ok());
  EXPECT_EQ(instance->universe.size(), 16u);
  EXPECT_EQ(instance->target, 0u);
  // Token 20 lives in the second batch.
  auto instance2 = tm.InstanceFor(20, {2.0, 2});
  ASSERT_TRUE(instance2.ok());
  EXPECT_NE(instance2->universe.front(), instance->universe.front());
}

TEST(TokenMagicTest, InstanceForUnknownTokenFails) {
  chain::Blockchain bc = MakeChain();
  TokenMagic tm(&bc, {});
  EXPECT_TRUE(tm.InstanceFor(999, {1.0, 1}).status().IsNotFound());
}

TEST(TokenMagicTest, GenerateCommitsToLedger) {
  chain::Blockchain bc = MakeChain();
  TokenMagicConfig config;
  config.lambda = 16;
  TokenMagic tm(&bc, config);
  ProgressiveSelector selector;
  common::Rng rng(1);
  auto generated = tm.GenerateRs(3, {2.0, 3}, selector, &rng);
  ASSERT_TRUE(generated.ok());
  EXPECT_EQ(tm.ledger().size(), 1u);
  EXPECT_EQ(tm.ledger().GroundTruthSpent(generated->id), 3u);
  EXPECT_TRUE(tm.ledger().IsSpent(3));
  // The proposed members satisfy the (strict-mode) requirement.
  EXPECT_TRUE(analysis::SatisfiesRecursiveDiversity(
      generated->members, tm.ht_index(), {2.0, 3}));
}

TEST(TokenMagicTest, DoubleSpendRejected) {
  chain::Blockchain bc = MakeChain();
  TokenMagicConfig config;
  config.lambda = 16;
  TokenMagic tm(&bc, config);
  ProgressiveSelector selector;
  common::Rng rng(2);
  ASSERT_TRUE(tm.GenerateRs(3, {2.0, 3}, selector, &rng).ok());
  auto again = tm.GenerateRs(3, {2.0, 3}, selector, &rng);
  EXPECT_EQ(again.status().code(), common::StatusCode::kAlreadyExists);
}

TEST(TokenMagicTest, SequentialSpendsKeepHistoryAnalysisClean) {
  chain::Blockchain bc = MakeChain();
  TokenMagicConfig config;
  config.lambda = 16;
  TokenMagic tm(&bc, config);
  ProgressiveSelector selector;
  common::Rng rng(3);
  // Spend several tokens of batch 0 in sequence.
  for (chain::TokenId t : {0u, 5u, 9u}) {
    auto generated = tm.GenerateRs(t, {2.0, 3}, selector, &rng);
    ASSERT_TRUE(generated.ok()) << "token " << t;
  }
  // The adversary's exact analysis on the resulting history eliminates
  // nothing and reveals nothing.
  auto result =
      analysis::ChainReactionAnalyzer::Analyze(tm.ledger().Views());
  EXPECT_TRUE(result.NoTokenEliminated());
  EXPECT_TRUE(result.revealed_spends.empty());
}

TEST(TokenMagicTest, FullRandomizationCollectsCandidates) {
  chain::Blockchain bc = MakeChain();
  TokenMagicConfig config;
  config.lambda = 16;
  config.full_randomization = true;
  TokenMagic tm(&bc, config);
  ProgressiveSelector selector;
  common::Rng rng(4);
  auto generated = tm.GenerateRs(2, {2.0, 2}, selector, &rng);
  ASSERT_TRUE(generated.ok());
  // Algorithm 1 runs the selector for every unspent token; at least the
  // target's own run qualifies, usually many more.
  EXPECT_GE(generated->candidate_count, 1u);
}

TEST(TokenMagicTest, LiquidityGuardBlocksDrainingUniverse) {
  // Tiny batch of 4 tokens; eta = 1 demands i - mu_i >= |T| - i, i.e.
  // spends cannot run ahead of remaining capacity.
  chain::Blockchain bc;
  bc.AddBlock(0, {1, 1, 1, 1});
  TokenMagicConfig config;
  config.lambda = 4;
  config.eta = 1.0;
  config.policy.strict_dtrs = false;
  TokenMagic tm(&bc, config);
  // First RS: i=1, mu=0, |T|=4: 1 - 0 >= 1*(4-1) = 3? No -> blocked.
  ProgressiveSelector selector;
  common::Rng rng(5);
  auto generated = tm.GenerateRs(0, {2.0, 2}, selector, &rng);
  EXPECT_TRUE(generated.status().IsUnsatisfiable());
}

TEST(TokenMagicTest, LiquidityAllowsChecksProspectiveMembers) {
  chain::Blockchain bc = MakeChain();
  TokenMagicConfig config;
  config.lambda = 16;
  config.eta = 0.0;  // permissive
  TokenMagic tm(&bc, config);
  EXPECT_TRUE(tm.LiquidityAllows(0, {0, 1, 2}));
}

TEST(TokenMagicTest, BatchesAccessorExposesPartition) {
  chain::Blockchain bc = MakeChain();
  TokenMagicConfig config;
  config.lambda = 16;
  TokenMagic tm(&bc, config);
  EXPECT_EQ(tm.batches().batch_count(), 2u);
  EXPECT_EQ(tm.batches().lambda(), 16u);
}

}  // namespace
}  // namespace tokenmagic::core
