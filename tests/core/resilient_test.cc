#include "core/resilient.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "analysis/diversity.h"
#include "common/deadline.h"
#include "common/stopwatch.h"
#include "core/baselines.h"
#include "core/bfs.h"
#include "core/game_theoretic.h"
#include "core/progressive.h"

namespace tokenmagic::core {
namespace {

using chain::DiversityRequirement;
using chain::RsView;
using chain::TokenId;

RsView View(chain::RsId id, std::vector<TokenId> members) {
  RsView v;
  v.id = id;
  v.members = std::move(members);
  std::sort(v.members.begin(), v.members.end());
  v.proposed_at = id;
  v.requirement = {1.0, 1};
  return v;
}

/// A randomized DA-MS instance: tokens partitioned into HTs and a ring
/// history, with a random target and requirement. The index is owned so
/// instances can be constructed in place (input.index points into *this).
struct RandomInstance {
  SelectionInput input;
  chain::HtIndex index;
  std::vector<TokenId> universe;
  std::vector<RsView> history;

  explicit RandomInstance(common::Rng* rng) {
    const size_t num_tokens = 12 + rng->NextBounded(10);
    const size_t num_hts = 3 + rng->NextBounded(5);
    for (TokenId t = 1; t <= static_cast<TokenId>(num_tokens); ++t) {
      index.Set(t, 1 + rng->NextBounded(num_hts));
      universe.push_back(t);
    }
    chain::RsId id = 1;
    TokenId t = 1;
    while (t <= static_cast<TokenId>(num_tokens)) {
      const size_t size = 2 + rng->NextBounded(4);
      std::vector<TokenId> members;
      for (size_t i = 0;
           i < size && t <= static_cast<TokenId>(num_tokens); ++i) {
        members.push_back(t++);
      }
      history.push_back(View(id++, std::move(members)));
    }
    input.universe = universe;
    input.history = history;
    input.target = 1 + rng->NextBounded(num_tokens);
    input.requirement = {1.0 + rng->NextDouble(),
                         2 + static_cast<int>(rng->NextBounded(4))};
    input.index = &index;
    input.policy.strict_dtrs = false;
    input.policy.check_dtrs_explicitly = false;
    input.policy.check_immutability = false;
  }
};

/// A deterministic instance the exact BFS selector cannot finish in any
/// reasonable budget: 24 tokens in 6 HTs with an ℓ far above the HT
/// count, so the diversity test fails for every candidate and the search
/// space (2^23 subsets) must be exhausted.
struct HardInstance {
  SelectionInput input;
  chain::HtIndex index;
  std::vector<TokenId> universe;
  std::vector<RsView> history;

  HardInstance() {
    const size_t num_tokens = 24;
    for (TokenId t = 1; t <= static_cast<TokenId>(num_tokens); ++t) {
      index.Set(t, 1 + (t - 1) % 6);
      universe.push_back(t);
    }
    chain::RsId id = 1;
    for (TokenId t = 1; t <= static_cast<TokenId>(num_tokens); t += 3) {
      history.push_back(View(id++, {t, t + 1, t + 2}));
    }
    input.universe = universe;
    input.history = history;
    input.target = 1;
    input.requirement = {1.0, 10};
    input.index = &index;
    input.policy.strict_dtrs = false;
    input.policy.check_dtrs_explicitly = false;
    input.policy.check_immutability = false;
  }
};

// The resilient selector's contract over randomized instances: either a
// valid ring — containing the target and satisfying the requirement the
// report claims — or a typed Unsatisfiable/Timeout. Nothing else.
TEST(ResilientSelectorTest, PropertyValidRingOrTypedError) {
  common::Rng meta(20260806);
  for (int trial = 0; trial < 40; ++trial) {
    RandomInstance inst(&meta);
    // Budgets keep exponential stages bounded (each BFS candidate can
    // trigger family-wide DTRS analysis, so the wall budget matters as
    // much as the tick budget); Timeout is an acceptable property
    // outcome.
    ResilientOptions options;
    options.total_budget_seconds = 0.25;
    options.total_iteration_budget = 20000;
    ResilientSelector selector(options);
    common::Rng rng(static_cast<uint64_t>(trial) + 1);
    auto selection = selector.SelectWithReport(inst.input, &rng);
    if (!selection.ok()) {
      EXPECT_TRUE(selection.status().IsUnsatisfiable() ||
                  selection.status().IsTimeout())
          << "trial " << trial << ": " << selection.status().ToString();
      continue;
    }
    const auto& members = selection->result.members;
    EXPECT_TRUE(std::binary_search(members.begin(), members.end(),
                                   inst.input.target))
        << "trial " << trial;
    EXPECT_TRUE(analysis::SatisfiesRecursiveDiversity(
        members, inst.index, selection->report.satisfied_requirement))
        << "trial " << trial;
    EXPECT_FALSE(selection->report.stage.empty());
    EXPECT_FALSE(selection->report.attempts.empty());
    // A non-degraded selection must satisfy the original requirement.
    if (!selection->report.degraded) {
      EXPECT_TRUE(analysis::SatisfiesRecursiveDiversity(
          members, inst.index, inst.input.requirement))
          << "trial " << trial;
    }
  }
}

// Every selector must honor a zero-budget deadline by returning Timeout
// before doing any work.
TEST(ResilientSelectorTest, ZeroBudgetDeadlineTimesOutOnAllSelectors) {
  common::Rng meta(99);
  RandomInstance inst(&meta);
  common::Deadline expired = common::Deadline::AlreadyExpired();
  inst.input.deadline = &expired;

  BfsSelector bfs;
  ProgressiveSelector progressive;
  GameTheoreticSelector game;
  SmallestSelector smallest;
  RandomSelector random;
  MoneroSelector monero;
  ResilientSelector resilient;
  const MixinSelector* all[] = {&bfs,      &progressive, &game,
                                &smallest, &random,      &monero,
                                &resilient};
  common::Rng rng(7);
  for (const MixinSelector* selector : all) {
    auto result = selector->Select(inst.input, &rng);
    ASSERT_FALSE(result.ok()) << selector->name();
    EXPECT_TRUE(result.status().IsTimeout())
        << selector->name() << ": " << result.status().ToString();
  }
}

// Acceptance scenario: an over-budget BFS instance returns Timeout within
// 2x the configured wall deadline...
TEST(ResilientSelectorTest, OverBudgetBfsTimesOutWithinTwiceTheDeadline) {
  HardInstance inst;
  BfsSelector::Options options;
  options.budget_seconds = 0.1;
  BfsSelector bfs(options);
  common::Rng rng(3);
  common::StopWatch watch;
  auto result = bfs.Select(inst.input, &rng);
  const double elapsed = watch.ElapsedSeconds();
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsTimeout()) << result.status().ToString();
  EXPECT_LT(elapsed, 2.0 * options.budget_seconds)
      << "BFS overshot its deadline: " << elapsed << "s";
}

// ...while the resilient ladder completes the same instance through a
// fallback stage and says so in its DegradationReport.
TEST(ResilientSelectorTest, LadderCompletesTheInstanceBfsCannot) {
  HardInstance inst;
  ResilientOptions options;
  options.total_budget_seconds = 2.0;
  ResilientSelector selector(options);
  common::Rng rng(3);
  auto selection = selector.SelectWithReport(inst.input, &rng);
  ASSERT_TRUE(selection.ok()) << selection.status().ToString();
  const DegradationReport& report = selection->report;
  EXPECT_TRUE(report.degraded);
  EXPECT_FALSE(report.stage.empty());
  // The winning ring is valid under the requirement the report admits to.
  EXPECT_TRUE(analysis::SatisfiesRecursiveDiversity(
      selection->result.members, inst.index, report.satisfied_requirement));
  EXPECT_TRUE(std::binary_search(selection->result.members.begin(),
                                 selection->result.members.end(),
                                 inst.input.target));
  // The report names every stage tried and its outcome.
  ASSERT_FALSE(report.attempts.empty());
  EXPECT_EQ(report.attempts.back().stage, report.stage);
  EXPECT_EQ(report.attempts.back().outcome, common::StatusCode::kOk);
  EXPECT_FALSE(report.ToString().empty());
}

// Iteration budgets are deterministic: a tiny budget must abort the exact
// search after exactly that many candidate visits.
TEST(ResilientSelectorTest, IterationBudgetIsDeterministic) {
  HardInstance inst;
  common::Deadline budget(0.0, 50);
  inst.input.deadline = &budget;
  BfsSelector bfs;
  common::Rng rng(3);
  auto result = bfs.Select(inst.input, &rng);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsTimeout());
  EXPECT_EQ(budget.iterations_used(), 50u);
}

// A custom single-stage ladder that cannot satisfy the instance surfaces
// Unsatisfiable (not a silent weaker ring) when relaxation is disabled.
TEST(ResilientSelectorTest, UnsatisfiableWithoutRelaxationIsTyped) {
  HardInstance inst;  // ell=10 with only 6 HTs: unsatisfiable as posed
  ProgressiveSelector progressive;
  ResilientOptions options;
  options.allow_relaxation = false;
  ResilientSelector selector({&progressive}, options);
  common::Rng rng(3);
  auto selection = selector.SelectWithReport(inst.input, &rng);
  ASSERT_FALSE(selection.ok());
  EXPECT_TRUE(selection.status().IsUnsatisfiable())
      << selection.status().ToString();
}

}  // namespace
}  // namespace tokenmagic::core
