#include "core/eligibility.h"

#include <gtest/gtest.h>

namespace tokenmagic::core {
namespace {

using chain::DiversityRequirement;
using chain::RsView;
using chain::TokenId;

RsView View(chain::RsId id, std::vector<TokenId> members,
            DiversityRequirement req = {1.0, 1}) {
  RsView v;
  v.id = id;
  v.members = std::move(members);
  std::sort(v.members.begin(), v.members.end());
  v.proposed_at = id;
  v.requirement = req;
  return v;
}

chain::HtIndex IdentityIndex(std::vector<TokenId> tokens) {
  chain::HtIndex idx;
  for (TokenId t : tokens) idx.Set(t, static_cast<chain::TxId>(t));
  return idx;
}

TEST(EffectiveRequirementTest, StrictModeBumpsEll) {
  DiversityRequirement req{0.6, 40};
  EligibilityPolicy strict;
  strict.strict_dtrs = true;
  EXPECT_EQ(EffectiveRequirement(req, strict).ell, 41);
  EXPECT_DOUBLE_EQ(EffectiveRequirement(req, strict).c, 0.6);
  EligibilityPolicy lax;
  lax.strict_dtrs = false;
  EXPECT_EQ(EffectiveRequirement(req, lax).ell, 40);
}

TEST(MaterializeCandidateTest, UnionsAndSorts) {
  std::vector<TokenId> universe = {1, 2, 3, 4, 5};
  std::vector<RsView> history = {View(0, {3, 4}), View(1, {1, 2})};
  auto mu = ModuleUniverse::Build(universe, history);
  ASSERT_TRUE(mu.ok());
  size_t m34 = mu->ModuleOfToken(3);
  size_t m12 = mu->ModuleOfToken(1);
  size_t f5 = mu->ModuleOfToken(5);
  auto members = MaterializeCandidate(*mu, {m34, f5, m12});
  EXPECT_EQ(members, (std::vector<TokenId>{1, 2, 3, 4, 5}));
}

TEST(CandidateSubsetCountTest, CountsItselfPlusCoveredRs) {
  std::vector<RsView> history = {View(0, {1, 2}, {1.0, 1}),
                                 View(1, {1, 2, 3}, {1.0, 1}),
                                 View(2, {4, 5}, {1.0, 1})};
  std::vector<TokenId> universe = {1, 2, 3, 4, 5, 6};
  auto mu = ModuleUniverse::Build(universe, history);
  ASSERT_TRUE(mu.ok());
  size_t m123 = mu->ModuleOfToken(1);  // super RS with v=2
  size_t m45 = mu->ModuleOfToken(4);   // super RS with v=1
  size_t f6 = mu->ModuleOfToken(6);
  EXPECT_EQ(CandidateSubsetCount(*mu, {m123, f6}), 3u);      // 1 + 2
  EXPECT_EQ(CandidateSubsetCount(*mu, {m123, m45, f6}), 4u); // 1 + 2 + 1
  EXPECT_EQ(CandidateSubsetCount(*mu, {f6}), 1u);
}

TEST(CheckCandidateTest, DiversityViolationDetected) {
  chain::HtIndex idx;
  // Two tokens, same HT.
  idx.Set(1, 100);
  idx.Set(2, 100);
  std::vector<TokenId> universe = {1, 2};
  auto mu = ModuleUniverse::Build(universe, {});
  ASSERT_TRUE(mu.ok());
  EligibilityPolicy policy;
  policy.strict_dtrs = false;
  auto verdict =
      CheckCandidate(*mu, {mu->ModuleOfToken(1), mu->ModuleOfToken(2)}, {},
                     idx, {1.0, 2}, policy);
  EXPECT_FALSE(verdict.eligible);
  EXPECT_EQ(verdict.violation, EligibilityVerdict::Violation::kDiversity);
}

TEST(CheckCandidateTest, EligibleWhenDiverse) {
  chain::HtIndex idx = IdentityIndex({1, 2, 3, 4});
  std::vector<TokenId> universe = {1, 2, 3, 4};
  auto mu = ModuleUniverse::Build(universe, {});
  ASSERT_TRUE(mu.ok());
  EligibilityPolicy policy;
  policy.strict_dtrs = false;
  std::vector<size_t> all = {mu->ModuleOfToken(1), mu->ModuleOfToken(2),
                             mu->ModuleOfToken(3), mu->ModuleOfToken(4)};
  // Frequencies [1,1,1,1]: (2, 2): 1 < 2*3 OK.
  auto verdict = CheckCandidate(*mu, all, {}, idx, {2.0, 2}, policy);
  EXPECT_TRUE(verdict.eligible);
  EXPECT_EQ(verdict.violation, EligibilityVerdict::Violation::kNone);
}

TEST(CheckCandidateTest, StrictModeIsStricter) {
  chain::HtIndex idx = IdentityIndex({1, 2, 3});
  std::vector<TokenId> universe = {1, 2, 3};
  auto mu = ModuleUniverse::Build(universe, {});
  ASSERT_TRUE(mu.ok());
  std::vector<size_t> all = {mu->ModuleOfToken(1), mu->ModuleOfToken(2),
                             mu->ModuleOfToken(3)};
  // Frequencies [1,1,1]; requirement (2, 3): 1 < 2*1 satisfied at ell=3
  // but ell+1=4 exceeds theta -> fails under strict mode.
  EligibilityPolicy lax;
  lax.strict_dtrs = false;
  EXPECT_TRUE(CheckCandidate(*mu, all, {}, idx, {2.0, 3}, lax).eligible);
  EligibilityPolicy strict;
  strict.strict_dtrs = true;
  EXPECT_FALSE(
      CheckCandidate(*mu, all, {}, idx, {2.0, 3}, strict).eligible);
}

TEST(CheckCandidateTest, ExplicitDtrsCheckCatchesViolations) {
  // Candidate formed by one super RS with high subset count: the DTRS
  // psi-sets are active and fail a strict requirement.
  chain::HtIndex idx = IdentityIndex({1, 2, 3});
  std::vector<RsView> history = {View(0, {1, 2, 3}), View(1, {1, 2, 3}),
                                 View(2, {1, 2, 3})};
  std::vector<TokenId> universe = {1, 2, 3};
  auto mu = ModuleUniverse::Build(universe, history);
  ASSERT_TRUE(mu.ok());
  std::vector<size_t> chosen = {mu->ModuleOfToken(1)};
  EligibilityPolicy policy;
  policy.strict_dtrs = false;
  policy.check_dtrs_explicitly = true;
  // v_candidate = 1 + 3 = 4 >= |r|=3 - |T~|=1 + 1 = 3: psi sets of size 2
  // with 2 distinct HTs. Requirement (1.0, 2): 1 < 1*1? No -> violation.
  auto verdict = CheckCandidate(*mu, chosen, history, idx, {1.0, 2}, policy);
  EXPECT_FALSE(verdict.eligible);
  EXPECT_EQ(verdict.violation,
            EligibilityVerdict::Violation::kDtrsDiversity);
  // Relaxed (2.0, 1): 1 < 2*2 -> fine.
  auto ok = CheckCandidate(*mu, chosen, history, idx, {2.0, 1}, policy);
  EXPECT_TRUE(ok.eligible);
}

TEST(CheckCandidateTest, ImmutabilityCheckProtectsCoveredRs) {
  // History RS r0 = {1,2} (both same HT!) declared (1.0, 1). Covering it
  // with a new super RS raises v; r0's psi set for its single HT is empty
  // -> immutability violation is detected when the check is on.
  chain::HtIndex idx;
  idx.Set(1, 100);
  idx.Set(2, 100);
  idx.Set(3, 300);
  idx.Set(4, 400);
  std::vector<RsView> history = {View(0, {1, 2}, {1.0, 1})};
  std::vector<TokenId> universe = {1, 2, 3, 4};
  auto mu = ModuleUniverse::Build(universe, history);
  ASSERT_TRUE(mu.ok());
  std::vector<size_t> chosen = {mu->ModuleOfToken(1), mu->ModuleOfToken(3),
                                mu->ModuleOfToken(4)};
  EligibilityPolicy policy;
  policy.strict_dtrs = false;
  policy.check_immutability = true;
  auto verdict = CheckCandidate(*mu, chosen, history, idx, {2.0, 2}, policy);
  EXPECT_FALSE(verdict.eligible);
  EXPECT_EQ(verdict.violation,
            EligibilityVerdict::Violation::kImmutability);
  // Without the immutability check the same candidate passes.
  policy.check_immutability = false;
  EXPECT_TRUE(
      CheckCandidate(*mu, chosen, history, idx, {2.0, 2}, policy).eligible);
}

}  // namespace
}  // namespace tokenmagic::core
