#include "core/module_greedy.h"

#include <gtest/gtest.h>

namespace tokenmagic::core {
namespace {

using chain::RsView;
using chain::TokenId;
using chain::TxId;

RsView View(chain::RsId id, std::vector<TokenId> members) {
  RsView v;
  v.id = id;
  v.members = std::move(members);
  std::sort(v.members.begin(), v.members.end());
  v.proposed_at = id;
  return v;
}

struct Fixture {
  chain::HtIndex index;
  SelectionInput input;
  std::vector<TokenId> universe;
  std::vector<RsView> history;

  Fixture() {
    // Two super RSs {1,2},{3,4} + fresh tokens 5,6; HTs: 1,2 share h1;
    // others distinct.
    index.Set(1, 100);
    index.Set(2, 100);
    index.Set(3, 300);
    index.Set(4, 400);
    index.Set(5, 500);
    index.Set(6, 600);
    input.target = 5;
    universe = {1, 2, 3, 4, 5, 6};
    history = {View(0, {1, 2}), View(1, {3, 4})};
    input.universe = universe;
    input.history = history;
    input.requirement = {2.0, 2};
    input.index = &index;
    input.policy.strict_dtrs = false;
  }
};

TEST(InitModuleStateTest, SeedsWithTargetModule) {
  Fixture fx;
  auto state = InitModuleState(fx.input);
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(state->chosen.size(), 1u);
  EXPECT_EQ(state->chosen[0], state->target_module);
  EXPECT_EQ(state->token_size, 1u);  // target 5 is a fresh token
  EXPECT_EQ(state->covered_hts.size(), 1u);
  EXPECT_TRUE(state->covered_hts.count(500));
  // 4 modules total (2 supers + 2 fresh); 3 remaining.
  EXPECT_EQ(state->mu.module_count(), 4u);
  EXPECT_EQ(state->remaining.size(), 3u);
}

TEST(InitModuleStateTest, TargetInSuperRsSeedsWholeModule) {
  Fixture fx;
  fx.input.target = 1;  // inside super RS {1,2}
  auto state = InitModuleState(fx.input);
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(state->token_size, 2u);
  EXPECT_EQ(state->covered_hts.size(), 1u);  // both tokens share h1
}

TEST(ChooseUnchooseTest, RoundTripRestoresState) {
  Fixture fx;
  auto state = InitModuleState(fx.input);
  ASSERT_TRUE(state.ok());
  size_t other = state->remaining[0];
  size_t size_before = state->token_size;
  auto hts_before = state->covered_hts;
  size_t remaining_before = state->remaining.size();

  ChooseModule(&*state, fx.index, other);
  EXPECT_EQ(state->chosen.size(), 2u);
  EXPECT_GT(state->token_size, size_before);
  EXPECT_EQ(state->remaining.size(), remaining_before - 1);

  UnchooseModule(&*state, fx.index, other);
  EXPECT_EQ(state->chosen.size(), 1u);
  EXPECT_EQ(state->token_size, size_before);
  EXPECT_EQ(state->covered_hts, hts_before);
  EXPECT_EQ(state->remaining.size(), remaining_before);
}

TEST(ChooseUnchooseTest, SharedHtSurvivesRemoval) {
  // Two modules sharing an HT: removing one must keep the HT covered.
  chain::HtIndex index;
  index.Set(1, 100);
  index.Set(2, 100);
  index.Set(3, 300);
  SelectionInput input;
  input.target = 3;
  std::vector<TokenId> universe = {1, 2, 3};
  input.universe = universe;
  input.requirement = {2.0, 1};
  input.index = &index;
  auto state = InitModuleState(input);
  ASSERT_TRUE(state.ok());
  size_t m1 = state->mu.ModuleOfToken(1);
  size_t m2 = state->mu.ModuleOfToken(2);
  ChooseModule(&*state, index, m1);
  ChooseModule(&*state, index, m2);
  EXPECT_TRUE(state->covered_hts.count(100));
  UnchooseModule(&*state, index, m2);
  EXPECT_TRUE(state->covered_hts.count(100));  // still via module m1
}

TEST(GreedyCoverHtsTest, StopsExactlyAtEll) {
  Fixture fx;
  auto state = InitModuleState(fx.input);
  ASSERT_TRUE(state.ok());
  auto steps = GreedyCoverHts(&*state, fx.index, 3);
  ASSERT_TRUE(steps.ok());
  EXPECT_GE(state->covered_hts.size(), 3u);
  // Greedy must not overshoot by more than one module's worth.
  EXPECT_LE(*steps, 2u);
}

TEST(GreedyCoverHtsTest, PrefersCheapHtsPerToken) {
  Fixture fx;
  auto state = InitModuleState(fx.input);
  ASSERT_TRUE(state.ok());
  // Needing 2 HTs: fresh token 6 (1 token, 1 new HT, alpha = 1) beats
  // super {3,4} (2 tokens, 2 new HTs, alpha = 2/min(1,2)=2) and super
  // {1,2} (2 tokens, 1 new HT, alpha = 2).
  auto steps = GreedyCoverHts(&*state, fx.index, 2);
  ASSERT_TRUE(steps.ok());
  EXPECT_EQ(*steps, 1u);
  auto members = MaterializeCandidate(state->mu, state->chosen);
  EXPECT_EQ(members, (std::vector<TokenId>{5, 6}));
}

TEST(GreedyCoverHtsTest, UnsatisfiableWhenHtsRunOut) {
  Fixture fx;
  auto state = InitModuleState(fx.input);
  ASSERT_TRUE(state.ok());
  auto steps = GreedyCoverHts(&*state, fx.index, 99);
  EXPECT_FALSE(steps.ok());
  EXPECT_TRUE(steps.status().IsUnsatisfiable());
}

TEST(ModuleHtsTest, DistinctHtsOfModule) {
  Fixture fx;
  auto state = InitModuleState(fx.input);
  ASSERT_TRUE(state.ok());
  const Module& super1 = state->mu.module(state->mu.ModuleOfToken(1));
  auto hts = ModuleHts(super1, fx.index);
  EXPECT_EQ(hts.size(), 1u);
  EXPECT_TRUE(hts.count(100));
}

}  // namespace
}  // namespace tokenmagic::core
