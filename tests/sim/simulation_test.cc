#include "sim/simulation.h"

#include <gtest/gtest.h>

#include "core/baselines.h"
#include "core/progressive.h"

namespace tokenmagic::sim {
namespace {

SimulationConfig SmallConfig() {
  SimulationConfig config;
  config.num_wallets = 3;
  config.tokens_per_wallet = 6;
  config.cluster_size = 2;
  config.rounds = 3;
  config.requirement = {2.0, 3};
  config.seed = 11;
  return config;
}

TEST(SimulationTest, RunsAllRoundsAndAcceptsSpends) {
  core::ProgressiveSelector selector;
  auto result = RunSimulation(SmallConfig(), selector);
  ASSERT_EQ(result.rounds.size(), 3u);
  size_t total_accepted = 0;
  for (const auto& round : result.rounds) {
    EXPECT_EQ(round.rings_on_ledger,
              total_accepted + round.accepted);
    total_accepted += round.accepted;
    EXPECT_LE(round.accepted, round.attempted);
  }
  EXPECT_GT(total_accepted, 0u);
}

TEST(SimulationTest, DaMsPolicyLeaksNothing) {
  core::ProgressiveSelector selector;
  auto result = RunSimulation(SmallConfig(), selector);
  for (const auto& round : result.rounds) {
    EXPECT_EQ(round.stats.fully_revealed, 0u) << "round " << round.round;
    EXPECT_EQ(round.homogeneity_leaks, 0u) << "round " << round.round;
    EXPECT_EQ(round.stats.with_eliminations, 0u);
  }
}

TEST(SimulationTest, AnonymitySetAtLeastRequirementDriven) {
  core::ProgressiveSelector selector;
  auto result = RunSimulation(SmallConfig(), selector);
  // With (2, 3)-diversity at strict mode the rings span >= 4 HTs, so the
  // anonymity set can never drop below 4 members.
  for (const auto& round : result.rounds) {
    if (round.rings_on_ledger == 0) continue;
    EXPECT_GE(round.stats.min_anonymity_set, 4.0);
  }
}

TEST(SimulationTest, DeterministicForFixedSeed) {
  core::ProgressiveSelector selector;
  auto a = RunSimulation(SmallConfig(), selector);
  auto b = RunSimulation(SmallConfig(), selector);
  ASSERT_EQ(a.rounds.size(), b.rounds.size());
  for (size_t i = 0; i < a.rounds.size(); ++i) {
    EXPECT_EQ(a.rounds[i].accepted, b.rounds[i].accepted);
    EXPECT_DOUBLE_EQ(a.rounds[i].stats.mean_anonymity_set,
                     b.rounds[i].stats.mean_anonymity_set);
  }
}

TEST(SimulationTest, SeedChangesTrajectory) {
  core::ProgressiveSelector selector;
  SimulationConfig other = SmallConfig();
  other.seed = 12;
  auto a = RunSimulation(SmallConfig(), selector);
  auto b = RunSimulation(other, selector);
  // Not bitwise-identical in general (sizes or acceptance may differ);
  // tolerate rare coincidence by checking several fields.
  bool any_diff = false;
  for (size_t i = 0; i < a.rounds.size(); ++i) {
    if (a.rounds[i].stats.mean_anonymity_set !=
        b.rounds[i].stats.mean_anonymity_set) {
      any_diff = true;
    }
  }
  SUCCEED();  // determinism is the hard guarantee; divergence is typical
  (void)any_diff;
}

TEST(SimulationTest, LedgerGrowsMonotonically) {
  core::ProgressiveSelector selector;
  auto result = RunSimulation(SmallConfig(), selector);
  size_t previous = 0;
  for (const auto& round : result.rounds) {
    EXPECT_GE(round.rings_on_ledger, previous);
    previous = round.rings_on_ledger;
  }
}

}  // namespace
}  // namespace tokenmagic::sim
