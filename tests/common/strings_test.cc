#include "common/strings.h"

#include <gtest/gtest.h>

namespace tokenmagic::common {
namespace {

TEST(SplitTest, BasicSplit) {
  EXPECT_EQ(Split("a,b,c", ','),
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SplitTest, PreservesEmptyFields) {
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(JoinTest, RoundTripsWithSplit) {
  std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(Join(parts, ","), "x,y,z");
  EXPECT_EQ(Split(Join(parts, ";"), ';'), parts);
}

TEST(JoinTest, EmptyAndSingle) {
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"only"}, ","), "only");
}

TEST(TrimTest, RemovesSurroundingWhitespace) {
  EXPECT_EQ(Trim("  hello \t\n"), "hello");
  EXPECT_EQ(Trim("no-trim"), "no-trim");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
}

TEST(StartsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_TRUE(StartsWith("foo", ""));
  EXPECT_FALSE(StartsWith("fo", "foo"));
  EXPECT_FALSE(StartsWith("xfoo", "foo"));
}

TEST(ParseInt64Test, ValidInputs) {
  int64_t v = 0;
  EXPECT_TRUE(ParseInt64("0", &v));
  EXPECT_EQ(v, 0);
  EXPECT_TRUE(ParseInt64("-123", &v));
  EXPECT_EQ(v, -123);
  EXPECT_TRUE(ParseInt64("9223372036854775807", &v));
  EXPECT_EQ(v, INT64_MAX);
}

TEST(ParseInt64Test, RejectsGarbage) {
  int64_t v = 0;
  EXPECT_FALSE(ParseInt64("", &v));
  EXPECT_FALSE(ParseInt64("12x", &v));
  EXPECT_FALSE(ParseInt64("x12", &v));
  EXPECT_FALSE(ParseInt64("99999999999999999999999", &v));  // overflow
  EXPECT_FALSE(ParseInt64("1.5", &v));
}

TEST(ParseDoubleTest, ValidAndInvalid) {
  double v = 0;
  EXPECT_TRUE(ParseDouble("2.5", &v));
  EXPECT_DOUBLE_EQ(v, 2.5);
  EXPECT_TRUE(ParseDouble("-1e3", &v));
  EXPECT_DOUBLE_EQ(v, -1000.0);
  EXPECT_FALSE(ParseDouble("", &v));
  EXPECT_FALSE(ParseDouble("2.5x", &v));
}

TEST(HexTest, EncodeKnownBytes) {
  std::vector<uint8_t> bytes = {0x00, 0xff, 0x0a, 0xb1};
  EXPECT_EQ(HexEncode(bytes), "00ff0ab1");
}

TEST(HexTest, DecodeRoundTrip) {
  std::vector<uint8_t> bytes = {1, 2, 3, 254, 255};
  std::vector<uint8_t> decoded;
  ASSERT_TRUE(HexDecode(HexEncode(bytes), &decoded));
  EXPECT_EQ(decoded, bytes);
}

TEST(HexTest, DecodeAcceptsUppercase) {
  std::vector<uint8_t> decoded;
  ASSERT_TRUE(HexDecode("DEADBEEF", &decoded));
  EXPECT_EQ(decoded, (std::vector<uint8_t>{0xde, 0xad, 0xbe, 0xef}));
}

TEST(HexTest, DecodeRejectsBadInput) {
  std::vector<uint8_t> decoded;
  EXPECT_FALSE(HexDecode("abc", &decoded));   // odd length
  EXPECT_FALSE(HexDecode("zz", &decoded));    // non-hex
}

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d-%s-%0.2f", 7, "x", 1.5), "7-x-1.50");
  EXPECT_EQ(StrFormat("no args"), "no args");
}

}  // namespace
}  // namespace tokenmagic::common
