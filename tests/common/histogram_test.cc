#include "common/histogram.h"

#include <gtest/gtest.h>

namespace tokenmagic::common {
namespace {

TEST(RunningStatsTest, EmptyStats) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats s;
  s.Add(5.0);
  EXPECT_EQ(s.count(), 1);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, KnownMoments) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(v);
  EXPECT_EQ(s.count(), 8);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  // Sample variance of this classic dataset: 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.sum(), 40.0, 1e-12);
}

TEST(RunningStatsTest, NegativeValues) {
  RunningStats s;
  s.Add(-3.0);
  s.Add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.min(), -3.0);
  EXPECT_EQ(s.max(), 3.0);
}

TEST(HistogramTest, EmptyHistogram) {
  Histogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.CountOf(5), 0);
  EXPECT_EQ(h.Mean(), 0.0);
}

TEST(HistogramTest, AddAndCount) {
  Histogram h;
  h.Add(2);
  h.Add(2);
  h.Add(3);
  h.AddN(7, 4);
  EXPECT_EQ(h.count(), 7);
  EXPECT_EQ(h.CountOf(2), 2);
  EXPECT_EQ(h.CountOf(3), 1);
  EXPECT_EQ(h.CountOf(7), 4);
  EXPECT_EQ(h.CountOf(99), 0);
}

TEST(HistogramTest, AddNZeroIsNoOp) {
  Histogram h;
  h.AddN(5, 0);
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.CountOf(5), 0);
}

TEST(HistogramTest, MinMaxMean) {
  Histogram h;
  h.Add(-5);
  h.Add(0);
  h.Add(5);
  h.Add(10);
  EXPECT_EQ(h.Min(), -5);
  EXPECT_EQ(h.Max(), 10);
  EXPECT_DOUBLE_EQ(h.Mean(), 2.5);
}

TEST(HistogramTest, PercentileNearestRank) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.Add(i);
  EXPECT_EQ(h.Percentile(50), 50);
  EXPECT_EQ(h.Percentile(90), 90);
  EXPECT_EQ(h.Percentile(100), 100);
  EXPECT_EQ(h.Percentile(0), 1);
  EXPECT_EQ(h.Percentile(1), 1);
}

TEST(HistogramTest, PercentileNearestRankExactBoundaries) {
  // ceil(p/100 * n) must use the exact rank at representable boundaries:
  // with 10 samples, p=10 is exactly rank 1, not rank 2 (the naive float
  // product 0.1 * 10 rounds up past 1.0).
  Histogram h;
  for (int i = 1; i <= 10; ++i) h.Add(i);
  EXPECT_EQ(h.Percentile(10), 1);
  EXPECT_EQ(h.Percentile(20), 2);
  EXPECT_EQ(h.Percentile(30), 3);
  EXPECT_EQ(h.Percentile(50), 5);
  EXPECT_EQ(h.Percentile(70), 7);
  EXPECT_EQ(h.Percentile(99), 10);
}

TEST(HistogramTest, PercentileInterpolatedMedian) {
  Histogram odd;
  for (int v : {1, 2, 3, 4, 5}) odd.Add(v);
  EXPECT_DOUBLE_EQ(odd.PercentileInterpolated(50), 3.0);

  Histogram even;
  for (int v : {1, 2, 3, 4}) even.Add(v);
  // Interpolated median of {1,2,3,4} is 2.5; nearest-rank reports 2.
  EXPECT_DOUBLE_EQ(even.PercentileInterpolated(50), 2.5);
  EXPECT_EQ(even.Percentile(50), 2);
}

TEST(HistogramTest, PercentileInterpolatedTails) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.Add(i);
  // Type-7 on 1..1000: h = p/100 * 999 over 0-based order statistics.
  EXPECT_DOUBLE_EQ(h.PercentileInterpolated(0), 1.0);
  EXPECT_DOUBLE_EQ(h.PercentileInterpolated(100), 1000.0);
  EXPECT_NEAR(h.PercentileInterpolated(50), 500.5, 1e-9);
  EXPECT_NEAR(h.PercentileInterpolated(99), 1 + 0.99 * 999, 1e-9);
  EXPECT_NEAR(h.PercentileInterpolated(99.9), 1 + 0.999 * 999, 1e-9);
}

TEST(HistogramTest, PercentileInterpolatedSingleBucket) {
  Histogram h;
  h.AddN(42, 17);
  for (double p : {0.0, 50.0, 99.0, 99.9, 100.0}) {
    EXPECT_DOUBLE_EQ(h.PercentileInterpolated(p), 42.0) << p;
    EXPECT_EQ(h.Percentile(p), 42) << p;
  }
}

TEST(HistogramTest, PercentileInterpolatedSingleSample) {
  Histogram h;
  h.Add(-7);
  EXPECT_DOUBLE_EQ(h.PercentileInterpolated(0), -7.0);
  EXPECT_DOUBLE_EQ(h.PercentileInterpolated(99.9), -7.0);
}

TEST(HistogramTest, PercentileInterpolatedHeavyBuckets) {
  // 90 observations of 1 and 10 of 2: p99 interpolates inside the gap.
  Histogram h;
  h.AddN(1, 90);
  h.AddN(2, 10);
  // h = 0.99 * 99 = 98.01 -> between the 99th (2) and 100th (2) samples.
  EXPECT_DOUBLE_EQ(h.PercentileInterpolated(99), 2.0);
  // h = 0.5 * 99 = 49.5 -> both straddling samples are 1.
  EXPECT_DOUBLE_EQ(h.PercentileInterpolated(50), 1.0);
  // h = 0.9 * 99 = 89.1 -> between the 90th sample (1) and 91st (2).
  EXPECT_NEAR(h.PercentileInterpolated(90), 1.0 + 0.1, 1e-9);
}

TEST(HistogramTest, MergeFromAggregates) {
  Histogram a;
  a.AddN(1, 3);
  a.Add(5);
  Histogram b;
  b.AddN(1, 2);
  b.Add(9);
  a.MergeFrom(b);
  EXPECT_EQ(a.count(), 7);
  EXPECT_EQ(a.CountOf(1), 5);
  EXPECT_EQ(a.CountOf(5), 1);
  EXPECT_EQ(a.CountOf(9), 1);
  // Merging an empty histogram is a no-op.
  a.MergeFrom(Histogram());
  EXPECT_EQ(a.count(), 7);
}

TEST(HistogramTest, ValuesSortedAscending) {
  Histogram h;
  h.Add(9);
  h.Add(-1);
  h.Add(4);
  EXPECT_EQ(h.Values(), (std::vector<int64_t>{-1, 4, 9}));
}

TEST(HistogramTest, AsciiRenderingContainsEveryBucket) {
  Histogram h;
  h.AddN(1, 10);
  h.AddN(2, 5);
  std::string ascii = h.ToAscii(10);
  EXPECT_NE(ascii.find("1\t10"), std::string::npos);
  EXPECT_NE(ascii.find("2\t5"), std::string::npos);
  // The peak bucket gets the full bar.
  EXPECT_NE(ascii.find("##########"), std::string::npos);
}

}  // namespace
}  // namespace tokenmagic::common
