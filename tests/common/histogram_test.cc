#include "common/histogram.h"

#include <gtest/gtest.h>

namespace tokenmagic::common {
namespace {

TEST(RunningStatsTest, EmptyStats) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats s;
  s.Add(5.0);
  EXPECT_EQ(s.count(), 1);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, KnownMoments) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(v);
  EXPECT_EQ(s.count(), 8);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  // Sample variance of this classic dataset: 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.sum(), 40.0, 1e-12);
}

TEST(RunningStatsTest, NegativeValues) {
  RunningStats s;
  s.Add(-3.0);
  s.Add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.min(), -3.0);
  EXPECT_EQ(s.max(), 3.0);
}

TEST(HistogramTest, EmptyHistogram) {
  Histogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.CountOf(5), 0);
  EXPECT_EQ(h.Mean(), 0.0);
}

TEST(HistogramTest, AddAndCount) {
  Histogram h;
  h.Add(2);
  h.Add(2);
  h.Add(3);
  h.AddN(7, 4);
  EXPECT_EQ(h.count(), 7);
  EXPECT_EQ(h.CountOf(2), 2);
  EXPECT_EQ(h.CountOf(3), 1);
  EXPECT_EQ(h.CountOf(7), 4);
  EXPECT_EQ(h.CountOf(99), 0);
}

TEST(HistogramTest, AddNZeroIsNoOp) {
  Histogram h;
  h.AddN(5, 0);
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.CountOf(5), 0);
}

TEST(HistogramTest, MinMaxMean) {
  Histogram h;
  h.Add(-5);
  h.Add(0);
  h.Add(5);
  h.Add(10);
  EXPECT_EQ(h.Min(), -5);
  EXPECT_EQ(h.Max(), 10);
  EXPECT_DOUBLE_EQ(h.Mean(), 2.5);
}

TEST(HistogramTest, PercentileNearestRank) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.Add(i);
  EXPECT_EQ(h.Percentile(50), 50);
  EXPECT_EQ(h.Percentile(90), 90);
  EXPECT_EQ(h.Percentile(100), 100);
  EXPECT_EQ(h.Percentile(0), 1);
  EXPECT_EQ(h.Percentile(1), 1);
}

TEST(HistogramTest, ValuesSortedAscending) {
  Histogram h;
  h.Add(9);
  h.Add(-1);
  h.Add(4);
  EXPECT_EQ(h.Values(), (std::vector<int64_t>{-1, 4, 9}));
}

TEST(HistogramTest, AsciiRenderingContainsEveryBucket) {
  Histogram h;
  h.AddN(1, 10);
  h.AddN(2, 5);
  std::string ascii = h.ToAscii(10);
  EXPECT_NE(ascii.find("1\t10"), std::string::npos);
  EXPECT_NE(ascii.find("2\t5"), std::string::npos);
  // The peak bucket gets the full bar.
  EXPECT_NE(ascii.find("##########"), std::string::npos);
}

}  // namespace
}  // namespace tokenmagic::common
