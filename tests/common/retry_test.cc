#include "common/retry.h"

#include <gtest/gtest.h>

#include <vector>

namespace tokenmagic::common {
namespace {

TEST(RetryPolicyTest, BackoffIsDeterministicExponentialAndCapped) {
  RetryPolicy policy;
  policy.base_backoff_seconds = 0.01;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_seconds = 0.05;
  EXPECT_DOUBLE_EQ(policy.BackoffSeconds(1), 0.0);  // first attempt: none
  EXPECT_DOUBLE_EQ(policy.BackoffSeconds(2), 0.01);
  EXPECT_DOUBLE_EQ(policy.BackoffSeconds(3), 0.02);
  EXPECT_DOUBLE_EQ(policy.BackoffSeconds(4), 0.04);
  EXPECT_DOUBLE_EQ(policy.BackoffSeconds(5), 0.05);  // capped
  EXPECT_DOUBLE_EQ(policy.BackoffSeconds(6), 0.05);
  // Same policy, same schedule: no hidden state.
  EXPECT_DOUBLE_EQ(policy.BackoffSeconds(3), 0.02);
}

TEST(RunWithRetryTest, FirstSuccessShortCircuits) {
  int calls = 0;
  auto status = RunWithRetry(RetryPolicy{}, [&] {
    ++calls;
    return Status::OK();
  });
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(calls, 1);
}

TEST(RunWithRetryTest, RetriesIoErrorUntilSuccess) {
  int calls = 0;
  std::vector<double> slept;
  RetryPolicy policy;
  policy.max_attempts = 5;
  auto status = RunWithRetry(
      policy,
      [&]() -> Status {
        ++calls;
        return calls < 3 ? Status::IoError("disk hiccup") : Status::OK();
      },
      [&](double seconds) { slept.push_back(seconds); });
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(calls, 3);
  ASSERT_EQ(slept.size(), 2u);
  EXPECT_DOUBLE_EQ(slept[0], policy.BackoffSeconds(2));
  EXPECT_DOUBLE_EQ(slept[1], policy.BackoffSeconds(3));
}

TEST(RunWithRetryTest, ExhaustedAttemptsReturnLastError) {
  int calls = 0;
  RetryPolicy policy;
  policy.max_attempts = 3;
  auto status = RunWithRetry(policy, [&] {
    ++calls;
    return Status::IoError("always failing");
  });
  EXPECT_TRUE(status.IsIoError());
  EXPECT_EQ(calls, 3);
}

TEST(RunWithRetryTest, NonRetryableErrorFailsImmediately) {
  int calls = 0;
  auto status = RunWithRetry(RetryPolicy{}, [&] {
    ++calls;
    return Status::InvalidArgument("caller bug");
  });
  EXPECT_TRUE(status.IsInvalidArgument());
  EXPECT_EQ(calls, 1);
}

TEST(RunWithRetryTest, CustomRetryablePredicate) {
  int calls = 0;
  RetryPolicy policy;
  policy.max_attempts = 4;
  auto status = RunWithRetry(
      policy,
      [&]() -> Status {
        ++calls;
        return Status::Timeout("slow");
      },
      {}, [](const Status& s) { return s.IsTimeout(); });
  EXPECT_TRUE(status.IsTimeout());
  EXPECT_EQ(calls, 4);
}

}  // namespace
}  // namespace tokenmagic::common
