#include "common/rng.h"

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace tokenmagic::common {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextBoundedStaysInRange) {
  Rng rng(7);
  for (uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RngTest, NextBoundedOneAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.NextBounded(1), 0u);
}

TEST(RngTest, NextBoundedRoughlyUniform) {
  Rng rng(11);
  constexpr uint64_t kBuckets = 10;
  constexpr int kSamples = 100000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kSamples; ++i) ++counts[rng.NextBounded(kBuckets)];
  for (int c : counts) {
    EXPECT_GT(c, kSamples / kBuckets * 0.9);
    EXPECT_LT(c, kSamples / kBuckets * 1.1);
  }
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(13);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(17);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, GaussianMomentsAreStandard) {
  Rng rng(19);
  double sum = 0, sq = 0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    double v = rng.NextGaussian();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.03);
  EXPECT_NEAR(sq / kN, 1.0, 0.05);
}

TEST(RngTest, NextBoolProbability) {
  Rng rng(23);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.NextBool(0.25) ? 1 : 0;
  EXPECT_NEAR(hits / 20000.0, 0.25, 0.02);
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(29);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> original = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(RngTest, ShuffleActuallyPermutes) {
  Rng rng(31);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[i] = i;
  std::vector<int> before = v;
  rng.Shuffle(&v);
  EXPECT_NE(v, before);  // astronomically unlikely to be identity
}

TEST(RngTest, SampleIndicesDistinctAndInRange) {
  Rng rng(37);
  for (int trial = 0; trial < 50; ++trial) {
    auto sample = rng.SampleIndices(20, 7);
    ASSERT_EQ(sample.size(), 7u);
    std::set<size_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 7u);
    for (size_t s : sample) EXPECT_LT(s, 20u);
  }
}

TEST(RngTest, SampleAllIsPermutation) {
  Rng rng(41);
  auto sample = rng.SampleIndices(10, 10);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng parent(43);
  Rng child = parent.Split();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.Next() == child.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(SplitMix64Test, KnownProgressionIsDeterministic) {
  uint64_t s1 = 0, s2 = 0;
  for (int i = 0; i < 10; ++i) EXPECT_EQ(SplitMix64(&s1), SplitMix64(&s2));
  EXPECT_EQ(s1, s2);
}

}  // namespace
}  // namespace tokenmagic::common
