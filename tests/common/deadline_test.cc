#include "common/deadline.h"

#include <gtest/gtest.h>

namespace tokenmagic::common {
namespace {

TEST(DeadlineTest, UnlimitedNeverExpires) {
  Deadline d = Deadline::Unlimited();
  EXPECT_FALSE(d.Expired());
  d.Tick(1'000'000);
  EXPECT_FALSE(d.Expired());
}

TEST(DeadlineTest, AlreadyExpiredIsExpiredFromTheStart) {
  Deadline d = Deadline::AlreadyExpired();
  EXPECT_TRUE(d.Expired());
  // Stays expired regardless of budgets consumed.
  d.Tick();
  EXPECT_TRUE(d.Expired());
}

TEST(DeadlineTest, WallBudgetExpiresAgainstInjectedClock) {
  ManualClock clock;
  Deadline d(1.0, 0, &clock);
  EXPECT_FALSE(d.Expired());
  clock.AdvanceSeconds(0.5);
  EXPECT_FALSE(d.Expired());
  EXPECT_DOUBLE_EQ(d.ElapsedSeconds(), 0.5);
  EXPECT_DOUBLE_EQ(d.RemainingSeconds(), 0.5);
  clock.AdvanceSeconds(0.6);
  EXPECT_TRUE(d.Expired());
  EXPECT_LT(d.RemainingSeconds(), 0.0);
}

TEST(DeadlineTest, IterationBudgetExpiresOnTick) {
  Deadline d(0.0, 3);
  EXPECT_FALSE(d.Expired());
  d.Tick(2);
  EXPECT_FALSE(d.Expired());
  d.Tick();
  EXPECT_TRUE(d.Expired());
  EXPECT_EQ(d.iterations_used(), 3u);
}

TEST(DeadlineTest, ParentExpiryPropagatesToChild) {
  ManualClock clock;
  Deadline parent(1.0, 0, &clock);
  Deadline child(10.0, 0, &clock, &parent);
  EXPECT_FALSE(child.Expired());
  clock.AdvanceSeconds(2.0);  // parent over budget, child's own is not
  EXPECT_TRUE(parent.Expired());
  EXPECT_TRUE(child.Expired());
}

TEST(DeadlineTest, ChildTicksChargeTheParent) {
  Deadline parent(0.0, 5);
  Deadline child(0.0, 100, nullptr, &parent);
  child.Tick(5);
  EXPECT_TRUE(parent.Expired());
  EXPECT_TRUE(child.Expired());  // via the parent, not its own budget
  EXPECT_EQ(parent.iterations_used(), 5u);
}

TEST(DeadlineTest, StageClampsToRemainingWallBudget) {
  ManualClock clock;
  Deadline overall(1.0, 0, &clock);
  clock.AdvanceSeconds(0.8);
  Deadline stage = overall.Stage(10.0, 0);
  // The stage asked for 10s but only 0.2s remain overall.
  EXPECT_LE(stage.budget_seconds(), 0.2 + 1e-9);
  clock.AdvanceSeconds(0.3);
  EXPECT_TRUE(stage.Expired());
}

TEST(DeadlineTest, StageInheritsClockAndChainsParent) {
  ManualClock clock;
  Deadline overall(0.0, 10, &clock);
  Deadline stage = overall.Stage(0.0, 4);
  EXPECT_EQ(stage.clock(), &clock);
  stage.Tick(4);
  EXPECT_TRUE(stage.Expired());
  EXPECT_FALSE(overall.Expired());
  EXPECT_EQ(overall.iterations_used(), 4u);
  // A second stage keeps charging the same overall budget.
  Deadline stage2 = overall.Stage(0.0, 100);
  stage2.Tick(6);
  EXPECT_TRUE(overall.Expired());
  EXPECT_TRUE(stage2.Expired());
}

TEST(DeadlineTest, ZeroBudgetsMeanUnlimited) {
  ManualClock clock;
  Deadline d(0.0, 0, &clock);
  clock.AdvanceSeconds(1e9);
  d.Tick(1'000'000);
  EXPECT_FALSE(d.Expired());
}

}  // namespace
}  // namespace tokenmagic::common
