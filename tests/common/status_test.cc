#include "common/status.h"

#include <gtest/gtest.h>

namespace tokenmagic::common {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, FactoryConstructorsSetCodeAndMessage) {
  Status st = Status::InvalidArgument("bad input");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsInvalidArgument());
  EXPECT_EQ(st.message(), "bad input");
  EXPECT_EQ(st.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllPredicatesMatchTheirCode) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::Unsatisfiable("x").IsUnsatisfiable());
  EXPECT_TRUE(Status::Timeout("x").IsTimeout());
  EXPECT_TRUE(Status::VerificationFailed("x").IsVerificationFailed());
  EXPECT_TRUE(Status::Cancelled("x").IsCancelled());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_FALSE(Status::NotFound("x").IsUnsatisfiable());
  EXPECT_FALSE(Status::Cancelled("x").IsTimeout());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kUnsatisfiable),
               "Unsatisfiable");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kVerificationFailed),
               "VerificationFailed");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kCancelled), "Cancelled");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(-1), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "payload");
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status Pipeline(int x, int* out) {
  TM_ASSIGN_OR_RETURN(int half, Half(x));
  TM_ASSIGN_OR_RETURN(int quarter, Half(half));
  *out = quarter;
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnPropagates) {
  int out = 0;
  EXPECT_TRUE(Pipeline(8, &out).ok());
  EXPECT_EQ(out, 2);
  EXPECT_TRUE(Pipeline(6, &out).IsInvalidArgument());  // 3 is odd
  EXPECT_TRUE(Pipeline(5, &out).IsInvalidArgument());
}

TEST(ResultTest, ReturnNotOkPropagates) {
  auto fn = [](bool fail) -> Status {
    TM_RETURN_NOT_OK(fail ? Status::Internal("boom") : Status::OK());
    return Status::OK();
  };
  EXPECT_TRUE(fn(false).ok());
  EXPECT_EQ(fn(true).code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace tokenmagic::common
