#include "chain/ledger.h"

#include <gtest/gtest.h>

namespace tokenmagic::chain {
namespace {

DiversityRequirement Req(double c, int ell) { return {c, ell}; }

TEST(LedgerTest, ProposeAndRead) {
  Ledger ledger;
  auto id = ledger.Propose({3, 1, 2}, 2, Req(0.5, 3));
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, 0u);
  const RsView& view = ledger.view(*id);
  EXPECT_EQ(view.members, (std::vector<TokenId>{1, 2, 3}));  // sorted
  EXPECT_EQ(view.requirement, Req(0.5, 3));
  EXPECT_EQ(view.proposed_at, 0u);
  EXPECT_EQ(ledger.GroundTruthSpent(*id), 2u);
}

TEST(LedgerTest, TimestampsAreMonotone) {
  Ledger ledger;
  ASSERT_TRUE(ledger.Propose({1, 2}, 1, Req(1, 1)).ok());
  ASSERT_TRUE(ledger.Propose({3, 4}, 3, Req(1, 1)).ok());
  EXPECT_EQ(ledger.view(0).proposed_at, 0u);
  EXPECT_EQ(ledger.view(1).proposed_at, 1u);
  EXPECT_EQ(ledger.now(), 2u);
}

TEST(LedgerTest, RejectsEmptyRs) {
  Ledger ledger;
  EXPECT_TRUE(ledger.Propose({}, 0, Req(1, 1)).status().IsInvalidArgument());
}

TEST(LedgerTest, RejectsSpendOutsideMembers) {
  Ledger ledger;
  EXPECT_TRUE(
      ledger.Propose({1, 2}, 5, Req(1, 1)).status().IsInvalidArgument());
}

TEST(LedgerTest, RejectsDoubleSpend) {
  Ledger ledger;
  ASSERT_TRUE(ledger.Propose({1, 2}, 1, Req(1, 1)).ok());
  auto second = ledger.Propose({1, 3}, 1, Req(1, 1));
  EXPECT_EQ(second.status().code(), common::StatusCode::kAlreadyExists);
  // Spending a different token that reuses the ring member is fine.
  EXPECT_TRUE(ledger.Propose({1, 3}, 3, Req(1, 1)).ok());
}

TEST(LedgerTest, DeduplicatesMembers) {
  Ledger ledger;
  auto id = ledger.Propose({2, 2, 1, 1}, 1, Req(1, 1));
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(ledger.view(*id).members, (std::vector<TokenId>{1, 2}));
}

TEST(LedgerTest, NeighborSetsTrackContainingRs) {
  Ledger ledger;
  ASSERT_TRUE(ledger.Propose({1, 2}, 1, Req(1, 1)).ok());
  ASSERT_TRUE(ledger.Propose({2, 3}, 3, Req(1, 1)).ok());
  ASSERT_TRUE(ledger.Propose({4, 5}, 4, Req(1, 1)).ok());
  EXPECT_EQ(ledger.NeighborSet(2), (std::vector<RsId>{0, 1}));
  EXPECT_EQ(ledger.NeighborSet(1), (std::vector<RsId>{0}));
  EXPECT_TRUE(ledger.NeighborSet(99).empty());
}

TEST(LedgerTest, IsSpentTracksGroundTruth) {
  Ledger ledger;
  ASSERT_TRUE(ledger.Propose({1, 2}, 2, Req(1, 1)).ok());
  EXPECT_TRUE(ledger.IsSpent(2));
  EXPECT_FALSE(ledger.IsSpent(1));
}

TEST(LedgerTest, ViewsReturnsProposalOrder) {
  Ledger ledger;
  ASSERT_TRUE(ledger.Propose({1, 2}, 1, Req(1, 1)).ok());
  ASSERT_TRUE(ledger.Propose({3, 4}, 4, Req(1, 1)).ok());
  auto views = ledger.Views();
  ASSERT_EQ(views.size(), 2u);
  EXPECT_EQ(views[0].id, 0u);
  EXPECT_EQ(views[1].id, 1u);
}

TEST(RsViewTest, ContainsUsesBinarySearch) {
  RsView view;
  view.members = {2, 5, 9};
  EXPECT_TRUE(view.Contains(5));
  EXPECT_FALSE(view.Contains(4));
  EXPECT_EQ(view.size(), 3u);
}

TEST(DiversityRequirementTest, ToStringFormat) {
  EXPECT_EQ(Req(0.6, 40).ToString(), "(0.6, 40)-diversity");
}

}  // namespace
}  // namespace tokenmagic::chain
