#include "chain/blockchain.h"

#include <gtest/gtest.h>

namespace tokenmagic::chain {
namespace {

TEST(BlockchainTest, EmptyChain) {
  Blockchain bc;
  EXPECT_EQ(bc.block_count(), 0u);
  EXPECT_EQ(bc.transaction_count(), 0u);
  EXPECT_EQ(bc.token_count(), 0u);
  EXPECT_TRUE(bc.AllTokens().empty());
}

TEST(BlockchainTest, SingleBlockSingleTx) {
  Blockchain bc;
  BlockHeight h = bc.BeginBlock(100);
  TxId tx = bc.AddTransaction(3);
  bc.EndBlock();
  EXPECT_EQ(h, 0u);
  EXPECT_EQ(bc.block_count(), 1u);
  EXPECT_EQ(bc.transaction_count(), 1u);
  EXPECT_EQ(bc.token_count(), 3u);
  EXPECT_EQ(bc.block(0).time, 100u);
  EXPECT_EQ(bc.block(0).token_count, 3u);
  EXPECT_EQ(bc.transaction(tx).outputs.size(), 3u);
}

TEST(BlockchainTest, TokensCarrySourceMetadata) {
  Blockchain bc;
  bc.AddBlock(0, {2, 1});
  bc.AddBlock(1, {4});
  // Tokens 0,1 from tx0; token 2 from tx1 (block 0); 3..6 from tx2 (blk 1).
  EXPECT_EQ(bc.token(0).source_tx, 0u);
  EXPECT_EQ(bc.token(1).source_tx, 0u);
  EXPECT_EQ(bc.token(2).source_tx, 1u);
  EXPECT_EQ(bc.token(3).source_tx, 2u);
  EXPECT_EQ(bc.token(0).height, 0u);
  EXPECT_EQ(bc.token(3).height, 1u);
  EXPECT_EQ(bc.token(1).output_index, 1u);
  EXPECT_EQ(bc.HistoricalTransactionOf(5), 2u);
}

TEST(BlockchainTest, AddBlockConvenience) {
  Blockchain bc;
  BlockHeight h1 = bc.AddBlock(10, {1, 2, 3});
  BlockHeight h2 = bc.AddBlock(20, {5});
  EXPECT_EQ(h1, 0u);
  EXPECT_EQ(h2, 1u);
  EXPECT_EQ(bc.token_count(), 11u);
  EXPECT_EQ(bc.block(1).transactions.size(), 1u);
}

TEST(BlockchainTest, TokensInBlockRange) {
  Blockchain bc;
  bc.AddBlock(0, {2});      // tokens 0,1
  bc.AddBlock(1, {1, 1});   // tokens 2,3
  bc.AddBlock(2, {3});      // tokens 4,5,6
  EXPECT_EQ(bc.TokensInBlockRange(0, 0),
            (std::vector<TokenId>{0, 1}));
  EXPECT_EQ(bc.TokensInBlockRange(1, 2),
            (std::vector<TokenId>{2, 3, 4, 5, 6}));
  // Range past the end clamps.
  EXPECT_EQ(bc.TokensInBlockRange(2, 99),
            (std::vector<TokenId>{4, 5, 6}));
}

TEST(BlockchainTest, AllTokensInCreationOrder) {
  Blockchain bc;
  bc.AddBlock(0, {2, 2});
  auto tokens = bc.AllTokens();
  ASSERT_EQ(tokens.size(), 4u);
  for (size_t i = 0; i < tokens.size(); ++i) EXPECT_EQ(tokens[i], i);
}

TEST(BlockchainTest, HasToken) {
  Blockchain bc;
  bc.AddBlock(0, {1});
  EXPECT_TRUE(bc.HasToken(0));
  EXPECT_FALSE(bc.HasToken(1));
}

TEST(BlockchainDeathTest, DoubleBeginBlockAborts) {
  Blockchain bc;
  bc.BeginBlock(0);
  EXPECT_DEATH(bc.BeginBlock(1), "TM_CHECK");
}

TEST(BlockchainDeathTest, AddTransactionOutsideBlockAborts) {
  Blockchain bc;
  EXPECT_DEATH(bc.AddTransaction(1), "TM_CHECK");
}

TEST(BlockchainDeathTest, ZeroOutputTransactionAborts) {
  Blockchain bc;
  bc.BeginBlock(0);
  EXPECT_DEATH(bc.AddTransaction(0), "TM_CHECK");
}

}  // namespace
}  // namespace tokenmagic::chain
