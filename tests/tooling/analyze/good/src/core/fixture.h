// Annotated twins of the analyze/bad fixtures: the same shapes, made
// legal with the grammar from src/common/annotations.h. tm_analyze must
// exit 0 on this tree.
#pragma once

#include <functional>
#include <span>
#include <vector>

namespace fixture {

struct RsView {
  int id;
};

struct ViewHolder {
  // tm-borrows(caller): window into the caller's batch storage.
  std::span<const int> window;
  // tm-owns: the holder's RS views.
  std::vector<RsView> history;
};

struct GoodBorrow {
  // tm-borrows(caller): spans the argument buffer for one call.
  std::span<const int> view;
};

struct SiblingBorrow {
  // tm-owns: the backing rows.
  std::vector<int> rows;
  // tm-borrows(rows): a window over the sibling member above.
  std::span<const int> window;
};

struct Callbacks {
  std::function<void()> on_event = [] {};
};

class Cache {
 public:
  // tm-invalidates(Cache::rows_): rebuilds the cached rows; borrowers
  // must re-fetch after calling this.
  void Refresh();

  // tm-invalidates(Cache::rows_): drops the cache.
  void Drop();

 private:
  // tm-owns: the cached rows.
  std::vector<int> rows_;
};

inline void Cache::Drop() {
  rows_.clear();
}

inline std::function<int()> MakeCounter() {
  int local = 0;
  return [local]() mutable { return ++local; };
}

inline std::span<const int> PassThroughWindow(std::span<const int> input) {
  return input;
}

}  // namespace fixture
