// Positive fixtures for tm_analyze.py: every rule must fire exactly where
// expected.txt says. Line numbers matter — keep edits in sync with it.
#pragma once

#include <functional>
#include <span>
#include <vector>

namespace fixture {

struct RsView {
  int id;
};

struct ViewHolder {
  std::span<const int> window;
  std::vector<RsView> history;
};

struct BadBorrow {
  // tm-borrows(nonexistent): no member or type by this name owns storage.
  std::span<const int> view;
};

struct Callbacks {
  std::function<void()> on_event = [&] {};
};

class Cache {
 public:
  // tm-invalidates(Cache::missing_): names a member never declared tm-owns.
  void Refresh();

  void Drop();

 private:
  // tm-owns: the cached rows.
  std::vector<int> rows_;
};

inline void Cache::Drop() {
  rows_.clear();
}

// tm-owns the colon is missing, so this does not parse as an annotation.
inline int Plain() { return 0; }

inline std::function<int()> MakeCounter() {
  int local = 0;
  return [&local] { return ++local; };
}

inline std::span<const int> DanglingWindow() {
  std::vector<int> scratch(8, 0);
  return scratch;
}

}  // namespace fixture
