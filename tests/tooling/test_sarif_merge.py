#!/usr/bin/env python3
"""Unit tests for the sarif.py merge CLI (one multi-run log per CI
upload instead of one artifact per analyzer)."""

from __future__ import annotations

import json
import pathlib
import subprocess
import sys
import tempfile
import unittest

ROOT = pathlib.Path(__file__).resolve().parents[2]
SARIF = ROOT / "tools" / "lint" / "sarif.py"

sys.path.insert(0, str(SARIF.parent))
import sarif  # noqa: E402


def one_run_log(tool: str, n: int) -> dict:
    findings = [sarif.Finding(f"src/{tool}/f{i}.cc", i + 1, f"{tool}-rule",
                              f"finding {i}") for i in range(n)]
    return sarif.make_log(tool, "1.0", findings,
                          {f"{tool}-rule": f"{tool} rule"})


class MergeLogsTest(unittest.TestCase):
    def test_runs_concatenate_in_order(self):
        merged = sarif.merge_logs([one_run_log("tm_lint", 2),
                                   one_run_log("tm_sync", 3)])
        self.assertEqual(merged["version"], "2.1.0")
        self.assertEqual(len(merged["runs"]), 2)
        names = [r["tool"]["driver"]["name"] for r in merged["runs"]]
        self.assertEqual(names, ["tm_lint", "tm_sync"])
        self.assertEqual(len(merged["runs"][0]["results"]), 2)
        self.assertEqual(len(merged["runs"][1]["results"]), 3)

    def test_empty_tool_log_keeps_its_run(self):
        # A clean analyzer still contributes a run (so code scanning can
        # close out its previously-open alerts).
        merged = sarif.merge_logs([one_run_log("tm_ct", 0)])
        self.assertEqual(len(merged["runs"]), 1)
        self.assertEqual(merged["runs"][0]["results"], [])

    def test_version_mismatch_rejected(self):
        bad = one_run_log("tm_lint", 1)
        bad["version"] = "2.0.0"
        with self.assertRaises(ValueError):
            sarif.merge_logs([bad])


class MergeCliTest(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self._tmp.cleanup)
        self.tmp = pathlib.Path(self._tmp.name)

    def test_cli_merges_files(self):
        ins = []
        for i, tool in enumerate(("tm_lint", "tm_analyze", "tm_ct",
                                  "tm_sync")):
            path = self.tmp / f"in{i}.sarif"
            path.write_text(json.dumps(one_run_log(tool, i)))
            ins.append(str(path))
        out = self.tmp / "merged.sarif"
        proc = subprocess.run(
            [sys.executable, str(SARIF), "merge", str(out)] + ins,
            capture_output=True, text=True)
        self.assertEqual(proc.returncode, 0, proc.stderr)
        merged = json.loads(out.read_text())
        self.assertEqual(len(merged["runs"]), 4)
        self.assertIn("4 runs, 6 results", proc.stdout)

    def test_cli_usage_error(self):
        proc = subprocess.run([sys.executable, str(SARIF), "merge"],
                              capture_output=True, text=True)
        self.assertEqual(proc.returncode, 2)
        self.assertIn("usage", proc.stderr)


if __name__ == "__main__":
    unittest.main()
