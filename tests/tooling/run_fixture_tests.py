#!/usr/bin/env python3
"""Fixture corpus for the static-analysis tools (ctest: tooling_fixtures).

Each tool gets a `bad` tree (one minimal TU per check, every rule fires at
a pinned file:line) and a `good` tree (the same shapes with valid
annotations, zero findings). This is what keeps the analyzers honest in
both directions: a regression that stops a rule from firing breaks the
`bad` expectations, and one that over-fires breaks the `good` trees.

Also validates the --sarif output of both tools against the shape GitHub
code scanning requires (version, rules, physical locations).
"""

from __future__ import annotations

import json
import pathlib
import re
import subprocess
import sys
import tempfile

HERE = pathlib.Path(__file__).resolve().parent
ROOT = HERE.parents[1]
FINDING_RE = re.compile(r'^(\S+?):(\d+): \[([\w-]+)\]')

TOOLS = {
    "lint": ROOT / "tools" / "lint" / "tm_lint.py",
    "analyze": ROOT / "tools" / "analyze" / "tm_analyze.py",
    "ct": ROOT / "tools" / "analyze" / "tm_ct.py",
    "sync": ROOT / "tools" / "analyze" / "tm_sync.py",
}

failures: list[str] = []


def fail(message: str) -> None:
    failures.append(message)
    print(f"FAIL: {message}", file=sys.stderr)


def run_tool(tool: str, tree: pathlib.Path, sarif: pathlib.Path | None = None):
    cmd = [sys.executable, str(TOOLS[tool]), "--root", str(tree)]
    if tool in ("analyze", "ct", "sync"):
        cmd += ["--frontend", "lexical"]  # pinned: fixtures test the rules
    if sarif is not None:
        cmd += ["--sarif", str(sarif)]
    return subprocess.run(cmd, capture_output=True, text=True)


def parse_findings(stderr: str) -> set[tuple[str, int, str]]:
    found = set()
    for line in stderr.splitlines():
        m = FINDING_RE.match(line)
        if m:
            found.add((m.group(1), int(m.group(2)), m.group(3)))
    return found


def load_expected(path: pathlib.Path) -> set[tuple[str, int, str]]:
    expected = set()
    for line in path.read_text().splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        loc, rule = line.split()
        file, line_no = loc.rsplit(":", 1)
        expected.add((file, int(line_no), rule))
    return expected


def check_bad(tool: str) -> None:
    tree = HERE / tool / "bad"
    with tempfile.TemporaryDirectory() as tmp:
        sarif_path = pathlib.Path(tmp) / "out.sarif"
        proc = run_tool(tool, tree, sarif_path)
        if proc.returncode != 1:
            fail(f"{tool}/bad: expected exit 1, got {proc.returncode}\n"
                 f"{proc.stderr}")
            return
        found = parse_findings(proc.stderr)
        expected = load_expected(tree / "expected.txt")
        for missing in sorted(expected - found):
            fail(f"{tool}/bad: expected finding did not fire: "
                 f"{missing[0]}:{missing[1]} [{missing[2]}]")
        for extra in sorted(found - expected):
            fail(f"{tool}/bad: unexpected finding: "
                 f"{extra[0]}:{extra[1]} [{extra[2]}]")
        check_sarif(tool, sarif_path, len(found))


def check_sarif(tool: str, path: pathlib.Path, n_findings: int) -> None:
    if not path.exists():
        fail(f"{tool}/bad: --sarif produced no file")
        return
    log = json.loads(path.read_text())
    if log.get("version") != "2.1.0":
        fail(f"{tool}/bad: SARIF version is {log.get('version')}")
        return
    run = log["runs"][0]
    results = run["results"]
    if len(results) != n_findings:
        fail(f"{tool}/bad: SARIF has {len(results)} results, stderr had "
             f"{n_findings} findings")
    rules = {r["id"] for r in run["tool"]["driver"]["rules"]}
    for result in results:
        if result["ruleId"] not in rules:
            fail(f"{tool}/bad: SARIF result rule {result['ruleId']} missing "
                 "from driver.rules")
        loc = result["locations"][0]["physicalLocation"]
        if loc["artifactLocation"].get("uriBaseId") != "SRCROOT":
            fail(f"{tool}/bad: SARIF location missing SRCROOT uriBaseId")


def check_good(tool: str) -> None:
    tree = HERE / tool / "good"
    proc = run_tool(tool, tree)
    if proc.returncode != 0:
        fail(f"{tool}/good: expected exit 0, got {proc.returncode}\n"
             f"{proc.stderr}")


def check_real_tree() -> None:
    """The actual src/ must be clean under both tools — the same gate the
    `lint` and `analyze` ctest targets enforce, repeated here so a fixture
    run alone proves the annotations in the repo are complete."""
    for tool in TOOLS:
        proc = run_tool(tool, ROOT)
        if proc.returncode != 0:
            fail(f"{tool} on the repo tree: expected exit 0, got "
                 f"{proc.returncode}\n{proc.stderr}")


def main() -> int:
    for tool in TOOLS:
        check_bad(tool)
        check_good(tool)
    check_real_tree()
    if failures:
        print(f"tooling fixtures: {len(failures)} failure(s)",
              file=sys.stderr)
        return 1
    print("tooling fixtures: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
