// Serving-layer fixtures: raw std::queue and its gateway include fire
// [rpc-bounded]; a stale escape fires [allow-hygiene]. The std::thread
// member and <thread> include are deliberate non-findings — thread
// discipline moved to tm_sync (thread-ownership), so tm_lint firing on
// them again would be a regression caught by this tree's exact-match.
#pragma once

#include <queue>
#include <thread>

namespace tokenmagic::rpc {

struct UnboundedServer {
  std::queue<int> pending;
  std::thread worker;
};

// tm-lint: allow(rpc-bounded, stale: suppresses nothing in its window)

}  // namespace tokenmagic::rpc
