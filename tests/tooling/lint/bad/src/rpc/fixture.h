// Serving-layer fixtures: raw std::queue/std::thread and their gateway
// includes fire [rpc-bounded]; a stale escape fires [allow-hygiene].
#pragma once

#include <queue>
#include <thread>

namespace tokenmagic::rpc {

struct UnboundedServer {
  std::queue<int> pending;
  std::thread worker;
};

// tm-lint: allow(rpc-bounded, stale: suppresses nothing in its window)

}  // namespace tokenmagic::rpc
