// Testnet fixtures: the regtest harness is under the same audited-owner
// discipline as src/rpc — raw std::queue fires [rpc-bounded]. The
// std::thread member stays a non-finding here (tm_sync owns it).
#pragma once

#include <queue>
#include <thread>

namespace tokenmagic::testnet {

struct RawHarness {
  std::queue<int> staged_relays;
  std::thread relay_pump;
};

}  // namespace tokenmagic::testnet
