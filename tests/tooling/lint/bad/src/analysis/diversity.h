// Positive fixtures for tm_lint.py (named diversity.h so the float ban
// applies). Every finding here is expected by expected.txt — keep line
// numbers in sync.
#pragma once

#include <chrono>
#include <span>
#include <vector>

#include "core/selector.h"

namespace tokenmagic::analysis {

struct RsView {
  int id;
};

// An unannotated double in a float-banned file.
inline double Approximate() { return 0.5; }

// tm-lint: float-ok(legacy token; must be migrated to allow)
inline double Legacy() { return 0.25; }

// tm-lint: allow(spelling, unknown check name)
inline int Unknown() { return 1; }

// tm-lint: allow(float, nothing below uses float, so this is stale)
inline int Stale() { return 2; }

// A raw clock read outside common/.
inline long Now() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

// A by-value RsView history in an analysis header.
struct Holder {
  std::vector<RsView> history;
};

// A Status return without [[nodiscard]].
common::Status Unchecked();

}  // namespace tokenmagic::analysis
