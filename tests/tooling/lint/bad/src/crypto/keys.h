// Deliberately missing the zeroize-on-destruction call: the
// secret-hygiene check must flag this file.
#pragma once

namespace tokenmagic::crypto {

struct Keypair {
  unsigned long long secret[4];
};

}  // namespace tokenmagic::crypto
