// Constant-time fixtures: the region below violates every ct rule once.
#include "crypto/lsag.h"

namespace tokenmagic::crypto {

void SignFixture(int secret_bit) {
  // tm-lint: ct-begin
  Secp256k1::Mul(secret_bit);
  int b = scalar.Bit(3);
  if (secret_bit) {
    b += 1;
  }
  if (b > 0) {  // tm-lint: allow(ct, bound does not depend on the secret_key)
    b -= 1;
  }
  // tm-lint: ct-end
}

}  // namespace tokenmagic::crypto
