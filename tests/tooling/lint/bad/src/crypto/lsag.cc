// The ct-region check is retired (constant-time hygiene moved to
// tools/analyze/tm_ct.py); tm_lint must now reject the old region
// markers and allow(ct) escapes instead of silently ignoring them.
#include "crypto/lsag.h"

namespace tokenmagic::crypto {

void SignFixture(int secret_bit) {
  // tm-lint: ct-begin
  if (secret_bit) {  // tm-lint: allow(ct, retired escape must be rejected)
    secret_bit -= 1;
  }
  // tm-lint: ct-end
}

}  // namespace tokenmagic::crypto
