// Positive fixtures for tm_lint.py check 10 (context-build): the node
// layer rebuilding an AnalysisContext directly instead of appending an
// epoch. Every finding here is expected by expected.txt — keep line
// numbers in sync.
#include "analysis/context.h"

namespace tokenmagic::node {

// A hot-path rebuild: O(history) per mined block.
inline void RebuildPerBlock() {
  auto context = analysis::AnalysisContext::Build({});
  (void)context;
}

// tm-lint: allow(context-build, nothing below rebuilds, so this is stale)
inline int Stale() { return 2; }

}  // namespace tokenmagic::node
