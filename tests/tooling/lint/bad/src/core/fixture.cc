// Positive fixture for tm_lint.py check 10 (context-build) in src/core/:
// a liquidity probe re-interning the whole history per call. Expected by
// expected.txt — keep line numbers in sync.
#include "analysis/context.h"

namespace tokenmagic::core {

inline bool ProbePerCall() {
  return analysis::AnalysisContext::Build({}).rs_count() == 0;
}

}  // namespace tokenmagic::core
