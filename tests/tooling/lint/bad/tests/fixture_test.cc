// Test-sleep fixtures: a bare timing-guess sleep in a test fires
// [test-sleep]; the sibling stale escape fires [allow-hygiene].
#include <chrono>
#include <thread>

namespace {

void FlakyWait() {
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
}

// tm-lint: allow(test-sleep, stale: suppresses nothing in its window)

}  // namespace
