// Good twin of the test-sleep fixture: the bounded poll interval
// carries its allow() on the line above the sleep.
#include <chrono>
#include <thread>

namespace {

bool Ready();

void BoundedPoll() {
  for (int i = 0; i < 100 && !Ready(); ++i) {
    // tm-lint: allow(test-sleep, bounded poll interval under a predicate)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

}  // namespace
