// Good twin of the testnet rpc-bounded fixture: the only raw queue
// carries its allow() on the exact line; raw std::thread is legal for
// tm_lint (tm_sync audits thread ownership), and std::this_thread
// helpers stay legal without an escape.
#pragma once

#include <queue>  // tm-lint: allow(rpc-bounded, audited owner fixture)
#include <thread>

namespace tokenmagic::testnet {

struct AuditedHarness {
  std::queue<int> staged;  // tm-lint: allow(rpc-bounded, capped by harness)
  std::thread pump;
};

inline void PollBackoff() { std::this_thread::yield(); }

}  // namespace tokenmagic::testnet
