// Good twin of the testnet rpc-bounded fixture: harness concurrency
// goes through the audited rpc::WorkerPool owner, and the only raw
// primitive carries its allow() on the exact line. std::this_thread
// helpers stay legal without an escape.
#pragma once

#include <thread>  // tm-lint: allow(rpc-bounded, audited owner fixture)

namespace tokenmagic::testnet {

struct AuditedHarness {
  std::thread pump;  // tm-lint: allow(rpc-bounded, joined in StopPump())
};

inline void PollBackoff() { std::this_thread::yield(); }

}  // namespace tokenmagic::testnet
