// Clean constant-time region: fixed trip counts are annotated, no
// variable-time calls, no scalar-bit branches.
#include "crypto/lsag.h"

namespace tokenmagic::crypto {

void SignFixture(unsigned long long mask) {
  // tm-lint: ct-begin
  unsigned long long acc = 0;
  for (int i = 0; i < 4; ++i) {  // tm-lint: allow(ct, fixed trip count)
    acc ^= mask & (1ull << i);
  }
  // tm-lint: ct-end
  (void)acc;
}

}  // namespace tokenmagic::crypto
