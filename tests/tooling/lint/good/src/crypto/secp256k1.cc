// Minimal twin so the ct checker has both files it audits.
#include "crypto/secp256k1.h"

namespace tokenmagic::crypto {

void LadderFixture() {
  // tm-lint: ct-begin
  // tm-lint: ct-end
}

}  // namespace tokenmagic::crypto
