#pragma once

namespace tokenmagic::crypto {

void SecureWipe(void* data, unsigned long len);

struct Keypair {
  unsigned long long secret[4];
  ~Keypair() { SecureWipe(secret, sizeof(secret)); }
};

}  // namespace tokenmagic::crypto
