// Good twin of the rpc-bounded fixture: the audited owner carries
// allow() on the exact queue lines; std::thread needs no lint escape
// at all any more (tm_sync's thread-ownership rule owns it), and
// std::this_thread (sleep / yield utilities) stays legal too.
#pragma once

#include <queue>  // tm-lint: allow(rpc-bounded, audited owner fixture)
#include <thread>

namespace tokenmagic::rpc {

struct AuditedPool {
  std::queue<int> reap;  // tm-lint: allow(rpc-bounded, drained in Join())
  std::thread worker;
};

inline void Backoff() { std::this_thread::yield(); }

}  // namespace tokenmagic::rpc
