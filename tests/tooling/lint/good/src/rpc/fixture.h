// Good twin of the rpc-bounded fixture: the audited owner carries
// allow() on the exact primitive lines, and std::this_thread (sleep /
// yield utilities) is legal without any escape comment.
#pragma once

#include <thread>  // tm-lint: allow(rpc-bounded, audited owner fixture)

namespace tokenmagic::rpc {

struct AuditedPool {
  std::thread worker;  // tm-lint: allow(rpc-bounded, joined in Join())
};

inline void Backoff() { std::this_thread::yield(); }

}  // namespace tokenmagic::rpc
