// Annotated twins of the lint/bad fixtures: every escape comment is used,
// every check is satisfied. tm_lint must exit 0 on this tree.
#pragma once

#include <span>
#include <vector>

#include "chain/types.h"

namespace tokenmagic::analysis {

// tm-lint: allow(float, fixture: audited approximate display value)
inline double Approximate() { return 0.5; }

struct Holder {
  // tm-lint: allow(history, fixture: this struct owns its views)
  std::vector<chain::RsView> history;
};

[[nodiscard]] common::Status Checked();

}  // namespace tokenmagic::analysis
