// Annotated twins of the lint/bad context-build fixtures: the hot path
// appends an epoch, and the one audited full rebuild (snapshot restore)
// carries an allow. tm_lint must exit 0 on this tree.
#include "analysis/epoch_chain.h"

namespace tokenmagic::node {

// The hot path: O(delta) epoch append, O(1) sealed view.
inline void AppendPerBlock(analysis::EpochChain* chain) {
  chain->Append({}, nullptr, {});
  auto context = chain->View();
  (void)context;
}

// A cold path with no incremental delta to route.
inline void RestoreFromSnapshot() {
  // tm-lint: allow(context-build, fixture: snapshot restore has no delta)
  auto context = analysis::AnalysisContext::Build({});
  (void)context;
}

}  // namespace tokenmagic::node
