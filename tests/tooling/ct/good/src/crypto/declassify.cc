// Declassify twins: every CtDeclassify carries its audit reason and
// every annotation attaches to a real declassification site.
#include "crypto/types.h"

namespace tokenmagic::crypto {

uint64_t DeclassifyFixture() {
  // tm-secret
  uint64_t sk = 7;
  uint64_t verdict = sk & 1;
  // tm-declassify(fixture verdict: the parity bit is published by design)
  CtDeclassify(&verdict, sizeof(verdict));
  SecureWipe(&sk, sizeof(sk));
  return verdict;
}

}  // namespace tokenmagic::crypto
