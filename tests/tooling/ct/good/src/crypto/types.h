// Carrier types for the good tree: every type tm_ct treats as
// self-wiping defines a destructor that wipes its secret members.
#pragma once

namespace tokenmagic::crypto {

void SecureWipe(void* data, unsigned long len);

struct Keypair {
  // tm-secret
  uint64_t secret[4];
  uint64_t pub[4];
  ~Keypair() { SecureWipe(secret, sizeof(secret)); }
};

struct Sha256 {
  uint64_t state_[8];
  ~Sha256() { SecureWipe(state_, sizeof(state_)); }
};

struct Commitment {
  // tm-secret
  uint64_t blinding[4];
  ~Commitment() { SecureWipe(blinding, sizeof(blinding)); }
};

}  // namespace tokenmagic::crypto
