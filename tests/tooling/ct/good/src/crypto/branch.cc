// Branch/index twins: the verdict pattern (branch-free verdict, audited
// CtDeclassify, then branch) keeps control flow off the secret itself.
#include "crypto/types.h"

namespace tokenmagic::crypto {

uint64_t BranchFixture(const uint64_t* table) {
  // tm-secret
  uint64_t sk = 5;
  uint64_t verdict = sk & 1;
  // tm-declassify(fixture verdict: the parity bit is published by design)
  CtDeclassify(&verdict, sizeof(verdict));
  uint64_t out = 0;
  if (verdict != 0) {
    out = table[0];
  }
  SecureWipe(&sk, sizeof(sk));
  return out;
}

}  // namespace tokenmagic::crypto
