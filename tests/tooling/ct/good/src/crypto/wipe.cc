// Wipe twins: the nonce is wiped before the frame is reused (the wipe
// obligation is flow-insensitive: any wipe in the body discharges it).
#include "crypto/types.h"

namespace tokenmagic::crypto {

void WipeFixture() {
  // tm-secret
  U256 nonce = U256::Zero();
  (void)nonce;
  SecureWipe(nonce.limbs.data(), sizeof(nonce.limbs));
}

}  // namespace tokenmagic::crypto
