// Variable-time twins: secret scalars go through the constant-time
// boundary; non-CT multiplies are reserved for public inputs.
#include "crypto/types.h"

namespace tokenmagic::crypto {

Point VarTimeFixture(common::Rng* rng) {
  // tm-secret
  U256 sk = RandomScalar(rng);
  Point p = Secp256k1::MulBaseCT(sk);
  SecureWipe(sk.limbs.data(), sizeof(sk.limbs));
  return p;
}

}  // namespace tokenmagic::crypto
