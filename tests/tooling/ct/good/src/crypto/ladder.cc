// Ladder twins: bits come from masked limb arithmetic and the loop
// carries an audit note stating why its trip count is public.
#include "crypto/types.h"

namespace tokenmagic::crypto {

// tm-ct-ladder
Point LadderFixture(const U256& scalar) {
  Point acc = Point::Infinity();
  // tm-declassify(fixture ladder: fixed 256-iteration trip count is public)
  for (int i = 0; i < 256; ++i) {
    uint64_t limb = scalar.limbs[i >> 6];
    uint64_t bit = (limb >> (i & 63)) & 1;
    acc = Secp256k1::Add(acc, acc);
    (void)bit;
  }
  return acc;
}

}  // namespace tokenmagic::crypto
