// Libcall twins: secret-derived tags are compared with the branch-free
// crypto::CtEquals instead of an early-exit memcmp.
#include "crypto/types.h"

namespace tokenmagic::crypto {

bool LibcallFixture(const uint8_t* mac, size_t n) {
  // tm-secret
  uint8_t tag[32] = {0};
  bool same = CtEquals({tag, n}, {mac, n});
  SecureWipe(tag, sizeof(tag));
  return same;
}

}  // namespace tokenmagic::crypto
