// Declassify fixtures: an unannotated CtDeclassify, a stale annotation
// and a bare reason-less annotation all fire declassify-audit.
#include "crypto/types.h"

namespace tokenmagic::crypto {

uint64_t DeclassifyFixture() {
  // tm-secret
  uint64_t sk = 7;
  uint64_t verdict = sk & 1;
  CtDeclassify(&verdict, sizeof(verdict));
  // tm-declassify(attached to nothing: must be reported stale)
  uint64_t pad = 0;
  // tm-declassify
  SecureWipe(&sk, sizeof(sk));
  return verdict + pad;
}

}  // namespace tokenmagic::crypto
