// Carrier types for the bad tree. Keypair and Sha256 wipe correctly;
// Commitment's destructor forgets the blinding, which must fire the
// self-wiping-type audit (declassify-audit) at the destructor line.
#pragma once

namespace tokenmagic::crypto {

void SecureWipe(void* data, unsigned long len);

struct Keypair {
  // tm-secret
  uint64_t secret[4];
  uint64_t pub[4];
  ~Keypair() { SecureWipe(secret, sizeof(secret)); }
};

struct Sha256 {
  uint64_t state_[8];
  ~Sha256() { SecureWipe(state_, sizeof(state_)); }
};

struct Commitment {
  // tm-secret
  uint64_t blinding[4];
  ~Commitment() { blinding[0] = 0; }
};

}  // namespace tokenmagic::crypto
