// Branch/index fixtures: control flow and a table lookup on a tainted
// scalar must fire secret-branch and secret-index exactly once each.
#include "crypto/types.h"

namespace tokenmagic::crypto {

uint64_t BranchFixture(const uint64_t* table) {
  // tm-secret
  uint64_t sk = 5;
  uint64_t out = 0;
  if (sk != 0) {
    out = 1;
  }
  out = table[sk & 7];
  SecureWipe(&sk, sizeof(sk));
  return out;
}

}  // namespace tokenmagic::crypto
