// Libcall fixture: comparing a secret-derived tag with memcmp leaks
// the position of the first differing byte; must fire secret-libcall.
#include "crypto/types.h"

namespace tokenmagic::crypto {

bool LibcallFixture(const uint8_t* mac, size_t n) {
  // tm-secret
  uint8_t tag[32] = {0};
  bool same = std::memcmp(tag, mac, n) == 0;
  SecureWipe(tag, sizeof(tag));
  return same;
}

}  // namespace tokenmagic::crypto
