// Ladder fixtures: .Bit() extraction and unannotated control flow
// inside a tm-ct-ladder body must each fire ladder-hygiene.
#include "crypto/types.h"

namespace tokenmagic::crypto {

// tm-ct-ladder
Point LadderFixture(const U256& scalar) {
  Point acc = Point::Infinity();
  for (int i = 0; i < 256; ++i) {
    uint64_t bit = scalar.Bit(i);
    (void)bit;
  }
  return acc;
}

}  // namespace tokenmagic::crypto
