// Variable-time fixtures: a non-CT scalar multiply on a secret and a
// modulo over tainted limbs must each fire variable-time-op.
#include "crypto/types.h"

namespace tokenmagic::crypto {

Point VarTimeFixture(common::Rng* rng) {
  // tm-secret
  U256 sk = RandomScalar(rng);
  Point p = Secp256k1::MulBase(sk);
  uint64_t r = sk.limbs[0] % 17;
  SecureWipe(&r, sizeof(r));
  SecureWipe(sk.limbs.data(), sizeof(sk.limbs));
  return p;
}

}  // namespace tokenmagic::crypto
