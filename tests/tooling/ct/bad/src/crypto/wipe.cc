// Wipe fixture: a tainted local that is neither wiped, returned, nor of
// a self-wiping type must fire wipe-on-exit at its declaration.
#include "crypto/types.h"

namespace tokenmagic::crypto {

void WipeFixture() {
  // tm-secret
  U256 nonce = U256::Zero();
  (void)nonce;
}

}  // namespace tokenmagic::crypto
