// Serving-layer sync fixtures: every lock/wait/thread rule fires at a
// pinned line. An unranked mutex, a rank-descending acquisition (direct
// and through a call), a bare cv wait, a sleep under a ranked lock, raw
// std::thread ownership, and a stale escape.
#pragma once

#include <condition_variable>
#include <mutex>
#include <thread>

#include "common/mutex.h"

namespace tokenmagic::rpc {

class RaggedServer {
 public:
  void Reorder() {
    common::MutexLock stats(&stats_mu_);
    common::MutexLock conns(&conns_mu_);
  }

  void LockHelper() { common::MutexLock lock(&conns_mu_); }

  void Transitive() {
    common::MutexLock stats(&stats_mu_);
    LockHelper();
  }

  void WaitBare() {
    std::unique_lock<std::mutex> lock(raw_mu_);
    cv_.wait(lock);
  }

  void SleepHeld() {
    common::MutexLock lock(&stats_mu_);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  void Leak() { worker_.detach(); }

 private:
  common::Mutex unranked_mu_;
  common::Mutex conns_mu_;  // tm-lock-rank(50)
  common::Mutex stats_mu_;  // tm-lock-rank(80)
  std::mutex raw_mu_;
  std::condition_variable cv_;
  std::thread worker_;
};

// tm-sync: allow(cv-predicate, stale: suppresses nothing in its window)

}  // namespace tokenmagic::rpc
