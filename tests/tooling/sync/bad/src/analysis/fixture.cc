// Publication fixtures: a relaxed publish, a relaxed consume, a publish
// whose field nothing ever consumes, and an unannotated counter.
#include <atomic>

namespace tokenmagic::analysis {

struct TailCell {
  std::atomic<const int*> slot{nullptr};
  std::atomic<int> hits{0};

  void PublishRelaxed(const int* fresh) {
    // tm-publishes(tail_slot)
    slot.store(fresh, std::memory_order_relaxed);
  }

  const int* ConsumeRelaxed() const {
    // tm-consumes(tail_slot)
    return slot.load(std::memory_order_relaxed);
  }

  void PublishOrphan(const int* fresh) {
    // tm-publishes(orphan_field)
    slot.store(fresh, std::memory_order_release);
  }

  void Touch() { hits.fetch_add(1, std::memory_order_relaxed); }
};

}  // namespace tokenmagic::analysis
