// Good twin of the serving-layer sync fixture: ranks ascend on every
// acquisition path (direct and through calls), the cv wait carries a
// predicate, sleeps happen outside ranked locks, and the thread owner
// carries its escapes on the exact lines.
#pragma once

#include <condition_variable>
#include <mutex>
// tm-sync: allow(thread-ownership, audited owner fixture)
#include <thread>

#include "common/mutex.h"

namespace tokenmagic::rpc {

class OrderedServer {
 public:
  void Ordered() {
    common::MutexLock conns(&conns_mu_);
    common::MutexLock stats(&stats_mu_);
  }

  void HighHelper() { common::MutexLock lock(&stats_mu_); }

  void Transitive() {
    common::MutexLock conns(&conns_mu_);
    HighHelper();
  }

  void WaitPredicated() {
    std::unique_lock<std::mutex> lock(raw_mu_);
    cv_.wait(lock, [this] { return ready_; });
  }

  void SleepUnlocked() {
    { common::MutexLock lock(&stats_mu_); ready_ = true; }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

 private:
  common::Mutex conns_mu_;  // tm-lock-rank(50)
  common::Mutex stats_mu_;  // tm-lock-rank(80)
  std::mutex raw_mu_;
  std::condition_variable cv_;
  bool ready_ = false;
  std::thread worker_;  // tm-sync: allow(thread-ownership, joined by owner)
};

}  // namespace tokenmagic::rpc
