// Good twin of the publication fixture: the slot pointer is a paired
// release/acquire publication and the counter is an audited standalone.
#include <atomic>

namespace tokenmagic::analysis {

struct TailCell {
  std::atomic<const int*> slot{nullptr};
  // tm-atomic(independent probe counter)
  std::atomic<int> hits{0};

  void Publish(const int* fresh) {
    // tm-publishes(tail_slot)
    slot.store(fresh, std::memory_order_release);
  }

  const int* Consume() const {
    // tm-consumes(tail_slot)
    return slot.load(std::memory_order_acquire);
  }

  void Touch() { hits.fetch_add(1, std::memory_order_relaxed); }
};

}  // namespace tokenmagic::analysis
