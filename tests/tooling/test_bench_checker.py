#!/usr/bin/env python3
"""Unit tests for tools/bench/check_bench_regression.py.

The checker is the only thing standing between a perf regression and a
green CI run, so its gates get the same bad/good treatment as the
analyzers: every hard-fail path is pinned (a regression that stops a
gate from firing fails here), and every pass path is pinned too (a gate
that over-fires would block unrelated PRs).

Runs the checker as a subprocess — the same way ctest and CI invoke
it — against synthetic fresh/baseline JSON pairs in a temp dir.
"""

from __future__ import annotations

import copy
import json
import pathlib
import subprocess
import sys
import tempfile
import unittest

ROOT = pathlib.Path(__file__).resolve().parents[2]
CHECKER = ROOT / "tools" / "bench" / "check_bench_regression.py"

CONTEXT_BASE = {
    "bench": "context_throughput",
    "scales": [
        {"num_rs": 1000, "speedup": 4.0,
         "phases": [{"name": "diversity", "speedup": 3.5}]},
        {"num_rs": 10000, "speedup": 6.0, "phases": []},
    ],
}

CHAIN_BASE = {
    "bench": "chain_growth",
    "smoke": False,
    "checkpoints": [
        {"tokens": 1000, "rs": 500, "mean_append_ms": 0.02,
         "append_window_blocks": 50, "full_build_ms": 1.0},
        {"tokens": 10000, "rs": 5000, "mean_append_ms": 0.025,
         "append_window_blocks": 50, "full_build_ms": 12.0},
    ],
    "token_growth_ratio": 10.0,
    "append_growth_ratio": 1.25,
    "build_growth_ratio": 12.0,
}

SERVE_BASE = {
    "bench": "serve",
    "issued": 1000,
    "resolved": 1000,
    "crashes": 0,
    "faults_injected": 40,
    "ok_fraction": 0.95,
    "throughput_rps": 800.0,
    "latency_micros": {"p50": 900, "p99": 4000, "p999": 9000},
}


class CheckerTest(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self._tmp.cleanup)
        self.tmp = pathlib.Path(self._tmp.name)

    def write(self, name: str, data: dict) -> pathlib.Path:
        path = self.tmp / name
        path.write_text(json.dumps(data))
        return path

    def run_checker(self, fresh: dict, baseline: dict | None = None,
                    factor: float | None = None, use_default_baseline=False):
        cmd = [sys.executable, str(CHECKER),
               str(self.write("fresh.json", fresh))]
        if not use_default_baseline:
            base = baseline if baseline is not None else fresh
            cmd += ["--baseline", str(self.write("baseline.json", base))]
        if factor is not None:
            cmd += ["--factor", str(factor)]
        return subprocess.run(cmd, capture_output=True, text=True)

    def assert_ok(self, proc):
        self.assertEqual(proc.returncode, 0,
                         f"expected OK:\n{proc.stdout}\n{proc.stderr}")
        self.assertIn("bench regression check: OK", proc.stdout)

    def assert_fail(self, proc, needle: str):
        self.assertEqual(proc.returncode, 1,
                         f"expected failure:\n{proc.stdout}\n{proc.stderr}")
        self.assertIn(needle, proc.stderr)


class ContextGateTest(CheckerTest):
    def test_identical_run_passes(self):
        self.assert_ok(self.run_checker(copy.deepcopy(CONTEXT_BASE)))

    def test_speedup_below_one_fails(self):
        fresh = copy.deepcopy(CONTEXT_BASE)
        fresh["scales"][0]["speedup"] = 0.9
        proc = self.run_checker(fresh, baseline=CONTEXT_BASE)
        self.assert_fail(proc, "slower than")

    def test_regression_past_factor_fails(self):
        fresh = copy.deepcopy(CONTEXT_BASE)
        fresh["scales"][1]["speedup"] = 3.0  # 0.5 of the 6.0x baseline
        proc = self.run_checker(fresh, baseline=CONTEXT_BASE, factor=0.8)
        self.assert_fail(proc, "regressed to 0.50")

    def test_small_wobble_within_factor_passes(self):
        fresh = copy.deepcopy(CONTEXT_BASE)
        fresh["scales"][1]["speedup"] = 5.5
        self.assert_ok(self.run_checker(fresh, baseline=CONTEXT_BASE))

    def test_missing_scale_fails(self):
        fresh = copy.deepcopy(CONTEXT_BASE)
        del fresh["scales"][1]
        proc = self.run_checker(fresh, baseline=CONTEXT_BASE)
        self.assert_fail(proc, "missing the 10000-RS scale")


class ChainGrowthGateTest(CheckerTest):
    def test_flat_append_passes(self):
        self.assert_ok(self.run_checker(copy.deepcopy(CHAIN_BASE)))

    def test_superlinear_append_fails(self):
        fresh = copy.deepcopy(CHAIN_BASE)
        fresh["append_growth_ratio"] = 6.0  # >= 10.0 * 0.5 ceiling
        proc = self.run_checker(fresh, baseline=CHAIN_BASE)
        self.assert_fail(proc, "no longer O(delta)")

    def test_append_not_below_rebuild_fails(self):
        fresh = copy.deepcopy(CHAIN_BASE)
        fresh["append_growth_ratio"] = 3.0
        fresh["build_growth_ratio"] = 2.5
        proc = self.run_checker(fresh, baseline=CHAIN_BASE)
        self.assert_fail(proc, "not below full-rebuild growth")

    def test_erosion_past_relative_ceiling_fails(self):
        fresh = copy.deepcopy(CHAIN_BASE)
        fresh["append_growth_ratio"] = 2.1  # > max(2.0, 1.25/0.8)
        proc = self.run_checker(fresh, baseline=CHAIN_BASE, factor=0.8)
        self.assert_fail(proc, "exceeds")

    def test_absolute_allowance_tolerates_noisy_near_flat(self):
        fresh = copy.deepcopy(CHAIN_BASE)
        fresh["append_growth_ratio"] = 1.9  # < 2.0 allowance
        self.assert_ok(self.run_checker(fresh, baseline=CHAIN_BASE))

    def test_smoke_run_skips_ratio_gates(self):
        fresh = copy.deepcopy(CHAIN_BASE)
        fresh["smoke"] = True
        fresh["append_growth_ratio"] = 9.0  # would trip every hard gate
        proc = self.run_checker(fresh, baseline=CHAIN_BASE)
        self.assert_ok(proc)
        self.assertIn("ratio gates skipped", proc.stdout)

    def test_single_checkpoint_fails_even_in_smoke(self):
        fresh = copy.deepcopy(CHAIN_BASE)
        fresh["smoke"] = True
        del fresh["checkpoints"][1]
        proc = self.run_checker(fresh, baseline=CHAIN_BASE)
        self.assert_fail(proc, "fewer than two checkpoints")


class ServeGateTest(CheckerTest):
    def test_clean_soak_passes(self):
        self.assert_ok(self.run_checker(copy.deepcopy(SERVE_BASE)))

    def test_unresolved_request_fails(self):
        fresh = copy.deepcopy(SERVE_BASE)
        fresh["resolved"] = 999
        proc = self.run_checker(fresh, baseline=SERVE_BASE)
        self.assert_fail(proc, "never resolved")

    def test_crash_fails(self):
        fresh = copy.deepcopy(SERVE_BASE)
        fresh["crashes"] = 1
        proc = self.run_checker(fresh, baseline=SERVE_BASE)
        self.assert_fail(proc, "crash(es)")

    def test_empty_run_fails(self):
        fresh = copy.deepcopy(SERVE_BASE)
        fresh["issued"] = fresh["resolved"] = 0
        proc = self.run_checker(fresh, baseline=SERVE_BASE)
        self.assert_fail(proc, "issued no requests")

    def test_ok_fraction_below_floor_fails(self):
        fresh = copy.deepcopy(SERVE_BASE)
        fresh["ok_fraction"] = 0.70  # floor is 0.95 * 0.8 = 0.76
        proc = self.run_checker(fresh, baseline=SERVE_BASE, factor=0.8)
        self.assert_fail(proc, "fell below")

    def test_degraded_but_above_floor_passes(self):
        fresh = copy.deepcopy(SERVE_BASE)
        fresh["ok_fraction"] = 0.80
        self.assert_ok(self.run_checker(fresh, baseline=SERVE_BASE,
                                        factor=0.8))


class DispatchTest(CheckerTest):
    def test_unknown_bench_kind_rejected(self):
        proc = self.run_checker({"bench": "nonsense"})
        self.assertNotEqual(proc.returncode, 0)
        self.assertIn("unknown bench kind", proc.stderr)

    def test_kind_mismatch_rejected(self):
        proc = self.run_checker(copy.deepcopy(SERVE_BASE),
                                baseline=copy.deepcopy(CHAIN_BASE))
        self.assertNotEqual(proc.returncode, 0)
        self.assertIn("baseline is", proc.stderr)

    def test_default_baseline_dispatches_on_kind(self):
        # A committed baseline compared against itself must pass: this
        # exercises the kind -> repo-root BENCH_*.json dispatch for real.
        for name in ("BENCH_context.json", "BENCH_chain_growth.json",
                     "BENCH_serve.json"):
            with self.subTest(baseline=name):
                fresh = json.loads((ROOT / name).read_text())
                proc = self.run_checker(fresh, use_default_baseline=True)
                self.assert_ok(proc)


if __name__ == "__main__":
    unittest.main()
