// End-to-end pipeline tests: chain -> TokenMagic selection -> LSAG
// signing -> verification -> adversarial analysis.
#include <gtest/gtest.h>

#include "analysis/chain_reaction.h"
#include "analysis/homogeneity.h"
#include "chain/ledger.h"
#include "core/progressive.h"
#include "core/game_theoretic.h"
#include "core/token_magic.h"
#include "crypto/lsag.h"
#include "data/monero_like.h"
#include "data/synthetic.h"

namespace tokenmagic {
namespace {

using core::ProgressiveSelector;
using core::TokenMagic;
using core::TokenMagicConfig;

TEST(EndToEndTest, SelectSignVerifySpend) {
  // A small chain; each token gets a one-time keypair.
  chain::Blockchain bc;
  for (int b = 0; b < 2; ++b) bc.AddBlock(b, {1, 1, 1, 1, 1, 1, 1, 1});
  TokenMagicConfig config;
  config.lambda = 16;
  TokenMagic tm(&bc, config);

  common::Rng rng(2024);
  std::vector<crypto::Keypair> keys;
  for (size_t i = 0; i < bc.token_count(); ++i) {
    keys.push_back(crypto::Keypair::Generate(&rng));
  }

  // Select mixins for token 5 under (2, 3)-diversity.
  ProgressiveSelector selector;
  auto generated = tm.GenerateRs(5, {2.0, 3}, selector, &rng);
  ASSERT_TRUE(generated.ok());

  // Build the cryptographic ring in member order and sign.
  std::vector<crypto::Point> ring;
  size_t signer_index = 0;
  for (size_t i = 0; i < generated->members.size(); ++i) {
    ring.push_back(keys[generated->members[i]].pub);
    if (generated->members[i] == 5) signer_index = i;
  }
  auto sig = crypto::Lsag::Sign(ring, signer_index, keys[5],
                                "tx: pay 1 XTM to bob", &rng);
  ASSERT_TRUE(sig.ok());
  EXPECT_TRUE(crypto::Lsag::Verify(*sig, "tx: pay 1 XTM to bob"));

  // Key image registry blocks a second spend of token 5.
  crypto::KeyImageRegistry registry;
  EXPECT_TRUE(registry.Register(sig->key_image).ok());
  auto sig2 = crypto::Lsag::Sign(ring, signer_index, keys[5],
                                 "tx: pay 1 XTM to carol", &rng);
  ASSERT_TRUE(sig2.ok());
  EXPECT_TRUE(crypto::Lsag::Verify(*sig2, "tx: pay 1 XTM to carol"));
  EXPECT_EQ(registry.Register(sig2->key_image).code(),
            common::StatusCode::kAlreadyExists);
}

TEST(EndToEndTest, MoneroLikeWorkloadSelectionsAreWellFormed) {
  data::Dataset ds = data::MakeMoneroLikeTrace();
  common::Rng rng(7);
  ProgressiveSelector selector;

  core::SelectionInput input;
  input.universe = ds.universe;
  input.history = ds.history;
  input.requirement = {0.6, 20};
  input.index = &ds.index;

  auto unspent = ds.UnspentTokens();
  for (int trial = 0; trial < 5; ++trial) {
    input.target = unspent[rng.NextBounded(unspent.size())];
    auto result = selector.Select(input, &rng);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(std::binary_search(result->members.begin(),
                                   result->members.end(), input.target));
    // Strict mode: the RS satisfies (c, ell+1), hence also (c, ell).
    EXPECT_TRUE(analysis::SatisfiesRecursiveDiversity(
        result->members, ds.index, {0.6, 21}));
  }
}

TEST(EndToEndTest, SyntheticWorkloadBothAlgorithmsAgreeOnFeasibility) {
  data::SyntheticParams params;
  params.seed = 99;
  data::Dataset ds = data::MakeSyntheticDataset(params);
  common::Rng rng(8);

  core::SelectionInput input;
  input.universe = ds.universe;
  input.history = ds.history;
  input.requirement = {0.6, 20};
  input.index = &ds.index;
  input.target = ds.UnspentTokens().front();

  ProgressiveSelector progressive;
  core::GameTheoreticSelector game;
  auto p = progressive.Select(input, &rng);
  auto g = game.Select(input, &rng);
  ASSERT_TRUE(p.ok());
  ASSERT_TRUE(g.ok());
  EXPECT_LE(g->members.size(), p->members.size() * 2);  // sanity bound
}

TEST(EndToEndTest, AttackFailsAgainstDaMsSelections) {
  // Spend 6 tokens through TokenMagic; the exact adversary must not
  // deanonymize any of them and no homogeneity leak may exist.
  chain::Blockchain bc;
  for (int b = 0; b < 3; ++b) bc.AddBlock(b, {1, 1, 1, 1, 1, 1, 1, 1});
  TokenMagicConfig config;
  config.lambda = 24;
  TokenMagic tm(&bc, config);
  ProgressiveSelector selector;
  common::Rng rng(31337);

  std::vector<chain::TokenId> spends = {0, 3, 7, 11, 15, 19};
  for (chain::TokenId t : spends) {
    ASSERT_TRUE(tm.GenerateRs(t, {2.0, 3}, selector, &rng).ok())
        << "token " << t;
  }
  auto views = tm.ledger().Views();
  auto result = analysis::ChainReactionAnalyzer::Analyze(views);
  EXPECT_TRUE(result.NoTokenEliminated());
  EXPECT_TRUE(result.revealed_spends.empty());
  for (const auto& view : views) {
    auto probe = analysis::ProbeHomogeneity(view.members, {}, tm.ht_index());
    EXPECT_FALSE(probe.ht_determined);
  }
}

TEST(EndToEndTest, LedgerGroundTruthIsConsistentWithAnalysis) {
  // The true spend must always be among the adversary's possible spends
  // (otherwise the analysis would be unsound).
  chain::Blockchain bc;
  bc.AddBlock(0, {1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1});
  TokenMagicConfig config;
  config.lambda = 12;
  TokenMagic tm(&bc, config);
  ProgressiveSelector selector;
  common::Rng rng(55);
  for (chain::TokenId t : {1u, 4u, 8u}) {
    ASSERT_TRUE(tm.GenerateRs(t, {2.0, 2}, selector, &rng).ok());
  }
  auto result =
      analysis::ChainReactionAnalyzer::Analyze(tm.ledger().Views());
  for (const auto& view : tm.ledger().Views()) {
    chain::TokenId truth = tm.ledger().GroundTruthSpent(view.id);
    const auto& possible = result.possible_spends.at(view.id);
    EXPECT_NE(std::find(possible.begin(), possible.end(), truth),
              possible.end());
  }
}

}  // namespace
}  // namespace tokenmagic
