// Property-based validation of the paper's theorems over randomized
// instances: Theorem 6.1 (psi-set DTRS characterization), Theorem 6.3
// (immutability under the first practical configuration), Theorem 6.4
// ((c, ell+1) on the RS implies (c, ell) on every DTRS), and the
// approximation behaviour of the Progressive/Game-theoretic selectors.
#include <gtest/gtest.h>

#include "analysis/chain_reaction.h"
#include "analysis/diversity.h"
#include "analysis/dtrs.h"
#include "core/baselines.h"
#include "core/game_theoretic.h"
#include "core/progressive.h"
#include "data/synthetic.h"

namespace tokenmagic {
namespace {

using chain::RsView;
using chain::TokenId;
using chain::TxId;

/// Random small instance: a universe with clustered HTs and a history of
/// disjoint super RSs (respecting the first practical configuration).
struct RandomInstance {
  std::vector<TokenId> universe;
  std::vector<RsView> history;
  chain::HtIndex index;

  explicit RandomInstance(uint64_t seed) {
    common::Rng rng(seed);
    size_t num_tokens = 12 + rng.NextBounded(8);
    size_t num_hts = 3 + rng.NextBounded(5);
    for (TokenId t = 0; t < num_tokens; ++t) {
      universe.push_back(t);
      index.Set(t, static_cast<TxId>(rng.NextBounded(num_hts)));
    }
    // Partition a prefix into 2-4 disjoint RSs.
    std::vector<TokenId> shuffled = universe;
    rng.Shuffle(&shuffled);
    size_t cursor = 0;
    size_t num_rs = 2 + rng.NextBounded(3);
    for (size_t r = 0; r < num_rs && cursor + 2 < shuffled.size(); ++r) {
      RsView view;
      view.id = r;
      view.proposed_at = r;
      view.requirement = {1.0, 1};
      size_t size = 2 + rng.NextBounded(3);
      for (size_t i = 0; i < size && cursor < shuffled.size() - 1; ++i) {
        view.members.push_back(shuffled[cursor++]);
      }
      std::sort(view.members.begin(), view.members.end());
      history.push_back(std::move(view));
    }
  }
};

class TheoremSweep : public ::testing::TestWithParam<uint64_t> {};

// Theorem 6.4: if an RS's HT multiset satisfies (c, ell+1), every exact
// DTRS of it satisfies (c, ell).
TEST_P(TheoremSweep, Theorem64DtrsDiversityFollowsFromStrictRs) {
  RandomInstance instance(GetParam());
  // Append a new RS that is the union of the first two history RSs (a
  // valid superset under the configuration).
  RsView candidate;
  candidate.id = 100;
  candidate.proposed_at = 100;
  for (size_t i = 0; i < std::min<size_t>(2, instance.history.size()); ++i) {
    const auto& m = instance.history[i].members;
    candidate.members.insert(candidate.members.end(), m.begin(), m.end());
  }
  std::sort(candidate.members.begin(), candidate.members.end());
  if (candidate.members.empty()) GTEST_SKIP();

  for (int ell = 1; ell <= 3; ++ell) {
    chain::DiversityRequirement strict{1.5, ell + 1};
    if (!analysis::SatisfiesRecursiveDiversity(candidate.members,
                                               instance.index, strict)) {
      continue;  // premise not met for this ell
    }
    std::vector<RsView> family = instance.history;
    family.push_back(candidate);
    analysis::DtrsFinder::Options options;
    options.max_combinations = 50000;
    auto dtrss = analysis::DtrsFinder::FindAll(family, candidate.id,
                                               instance.index, options);
    if (!dtrss.ok()) continue;  // capped-out instance: skip
    for (const auto& d : *dtrss) {
      EXPECT_TRUE(analysis::SatisfiesRecursiveDiversity(
          d.Tokens(), instance.index, {1.5, ell}))
          << "seed " << GetParam() << " ell " << ell;
    }
  }
}

// Theorem 6.3: proposing a new RS that is a superset of (or disjoint
// from) every existing RS cannot newly reveal any existing spend.
TEST_P(TheoremSweep, Theorem63NewRsDoesNotRevealOldSpends) {
  RandomInstance instance(GetParam());
  auto before =
      analysis::ChainReactionAnalyzer::Analyze(instance.history);

  // Candidate: union of ALL history RSs plus any free tokens — a strict
  // superset of every RS, trivially respecting the configuration.
  RsView candidate;
  candidate.id = 100;
  candidate.proposed_at = 100;
  candidate.members = instance.universe;
  std::sort(candidate.members.begin(), candidate.members.end());

  std::vector<RsView> after_views = instance.history;
  after_views.push_back(candidate);
  auto after = analysis::ChainReactionAnalyzer::Analyze(after_views);

  for (const auto& view : instance.history) {
    bool revealed_before = before.revealed_spends.count(view.id) > 0;
    bool revealed_after = after.revealed_spends.count(view.id) > 0;
    EXPECT_TRUE(!revealed_after || revealed_before)
        << "rs " << view.id << " newly revealed, seed " << GetParam();
  }
}

// Theorem 6.1 cross-check: on instances where the exact SDR space is
// tractable, the psi-set characterization of DTRS token sets agrees with
// the exactly enumerated minimal DTRSs for fully covered super RSs.
TEST_P(TheoremSweep, Theorem61PsiSetsAreDtrsTokenSets) {
  uint64_t seed = GetParam();
  common::Rng rng(seed * 31 + 7);
  // Construct: two identical super RSs s (so v = 2) over 3 tokens, and
  // one disjoint RS. Check DTRSs of the later copy.
  std::vector<TokenId> tokens = {0, 1, 2, 3, 4};
  chain::HtIndex index;
  size_t num_hts = 2 + rng.NextBounded(2);
  for (TokenId t : tokens) {
    index.Set(t, static_cast<TxId>(rng.NextBounded(num_hts)));
  }
  RsView r0{0, {0, 1, 2}, 0, {1.0, 1}};
  RsView r1{1, {0, 1, 2}, 1, {1.0, 1}};
  RsView r2{2, {3, 4}, 2, {1.0, 1}};
  std::vector<RsView> history = {r0, r1, r2};

  auto dtrss = analysis::DtrsFinder::FindAll(history, 1, index);
  ASSERT_TRUE(dtrss.ok());

  // Theorem 6.1 with r_i = r1, v = 2, |r| = 3: a DTRS pinning HT h exists
  // iff 2 >= 3 - |T~_h| + 1, i.e. |T~_h| >= 2. Its token set is r \ T~_h.
  std::map<TxId, std::vector<TokenId>> by_ht;
  for (TokenId t : r1.members) by_ht[index.HtOf(t)].push_back(t);
  for (const auto& [ht, same] : by_ht) {
    std::vector<TokenId> psi;
    for (TokenId t : r1.members) {
      if (index.HtOf(t) != ht) psi.push_back(t);
    }
    bool expected_exists = same.size() >= 2 && !psi.empty();
    bool found = false;
    for (const auto& d : *dtrss) {
      if (d.determined_ht == ht) {
        std::vector<TokenId> dtrs_tokens = d.Tokens();
        std::sort(dtrs_tokens.begin(), dtrs_tokens.end());
        if (dtrs_tokens == psi) found = true;
      }
    }
    EXPECT_EQ(found, expected_exists)
        << "seed " << seed << " ht " << ht;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TheoremSweep,
                         ::testing::Range<uint64_t>(1, 16));

// Selector-level properties on synthetic datasets.
class SelectorPropertySweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SelectorPropertySweep, SelectionsSatisfyAllPracticalConstraints) {
  data::SyntheticParams params;
  params.num_super_rs = 15;
  params.super_size_min = 3;
  params.super_size_max = 8;
  params.num_fresh = 5;
  params.sigma = 6;
  params.seed = GetParam();
  data::Dataset ds = data::MakeSyntheticDataset(params);
  common::Rng rng(GetParam() * 17 + 3);

  core::SelectionInput input;
  input.universe = ds.universe;
  input.history = ds.history;
  input.requirement = {1.0, 6};
  input.index = &ds.index;
  input.policy.check_dtrs_explicitly = true;
  input.policy.check_immutability = true;
  input.target = ds.UnspentTokens()[rng.NextBounded(20)];

  core::ProgressiveSelector progressive;
  core::GameTheoreticSelector game;
  core::SmallestSelector smallest;
  core::RandomSelector random;
  std::vector<const core::MixinSelector*> selectors = {
      &progressive, &game, &smallest, &random};
  for (const auto* selector : selectors) {
    auto result = selector->Select(input, &rng);
    if (!result.ok()) {
      EXPECT_TRUE(result.status().IsUnsatisfiable()) << selector->name();
      continue;
    }
    // (c, ell+1) holds (strict mode), hence (c, ell) holds too.
    EXPECT_TRUE(analysis::SatisfiesRecursiveDiversity(
        result->members, ds.index, {1.0, 7}))
        << selector->name() << " seed " << GetParam();
    EXPECT_TRUE(std::binary_search(result->members.begin(),
                                   result->members.end(), input.target));
    // First practical configuration: the result is a union of whole
    // modules — every history RS is inside or outside, never split.
    for (const auto& view : ds.history) {
      size_t inside = 0;
      for (TokenId t : view.members) {
        if (std::binary_search(result->members.begin(),
                               result->members.end(), t)) {
          ++inside;
        }
      }
      EXPECT_TRUE(inside == 0 || inside == view.members.size())
          << selector->name() << " split rs " << view.id;
    }
  }
}

// Theorem 6.7 (PoA proof, intermediate bound): the converged RS obeys
// |r_c| <= q_M * (ell - 1) + q_M / c + z_M, with q_M the peak HT
// frequency in T and z_M the largest super-RS size.
TEST_P(SelectorPropertySweep, GameRespectsTheorem67SizeBound) {
  data::SyntheticParams params;
  params.num_super_rs = 12;
  params.super_size_min = 4;
  params.super_size_max = 10;
  params.num_fresh = 6;
  params.sigma = 8;
  params.seed = GetParam() + 1000;
  data::Dataset ds = data::MakeSyntheticDataset(params);
  common::Rng rng(GetParam() * 13 + 1);

  chain::DiversityRequirement req{1.0, 8};
  core::SelectionInput input;
  input.universe = ds.universe;
  input.history = ds.history;
  input.requirement = req;
  input.index = &ds.index;
  // The bound is stated for the raw requirement (no strict-mode bump).
  input.policy.strict_dtrs = false;
  input.target = ds.UnspentTokens()[0];

  core::GameTheoreticSelector game;
  auto g = game.Select(input, &rng);
  if (!g.ok()) GTEST_SKIP();

  auto freq = analysis::HtFrequencies(ds.universe, ds.index);
  double q_max = static_cast<double>(freq.front());
  size_t z_max = 0;
  for (const auto& view : ds.history) {
    z_max = std::max(z_max, view.members.size());
  }
  double bound = q_max * (req.ell - 1) + q_max / req.c +
                 static_cast<double>(z_max);
  EXPECT_LE(static_cast<double>(g->members.size()), bound)
      << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, SelectorPropertySweep,
                         ::testing::Range<uint64_t>(1, 11));

// Aggregate comparison across seeds: on average the equilibrium is at
// least as small as the random baseline (matching Figures 5-10's ordering
// TM_G <= TM_R), even though single instances can deviate.
TEST(SelectorAggregateTest, GameBeatsRandomOnAverage) {
  double game_total = 0.0;
  double random_total = 0.0;
  int counted = 0;
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    data::SyntheticParams params;
    params.num_super_rs = 12;
    params.super_size_min = 4;
    params.super_size_max = 10;
    params.num_fresh = 6;
    params.sigma = 8;
    params.seed = seed + 1000;
    data::Dataset ds = data::MakeSyntheticDataset(params);
    common::Rng rng(seed * 13 + 1);

    core::SelectionInput input;
    input.universe = ds.universe;
    input.history = ds.history;
    input.requirement = {1.0, 8};
    input.index = &ds.index;
    input.target = ds.UnspentTokens()[0];

    core::GameTheoreticSelector game;
    core::RandomSelector random;
    auto g = game.Select(input, &rng);
    auto r = random.Select(input, &rng);
    if (!g.ok() || !r.ok()) continue;
    game_total += static_cast<double>(g->members.size());
    random_total += static_cast<double>(r->members.size());
    ++counted;
  }
  ASSERT_GT(counted, 5);
  EXPECT_LE(game_total, random_total);
}

}  // namespace
}  // namespace tokenmagic
