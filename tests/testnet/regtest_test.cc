// The regtest harness's own test suite (ctest label `regtest`): the
// scenario DSL parses strictly, every builtin scenario runs to a green
// consistency check, and the determinism contract holds — one seed, one
// digest, across consecutive runs and (when TM_NODE_BIN is exported by
// the build) across the in-process and spawned-daemon cluster modes.
#include "testnet/scenario.h"

#include <unistd.h>

#include <cstdlib>
#include <string>

#include "common/strings.h"
#include "gtest/gtest.h"

namespace tokenmagic::testnet {
namespace {

std::string TestWorkdir(const std::string& name) {
  // Short paths on purpose: AF_UNIX socket paths cap at ~107 bytes.
  return common::StrFormat("/tmp/tm_rt_%d/%s", static_cast<int>(getpid()),
                           name.c_str());
}

ClusterConfig BaseConfig(const std::string& tag) {
  ClusterConfig config;
  config.nodes = 4;
  config.seed = 1;
  config.workdir = TestWorkdir(tag);
  return config;
}

/// Runs `scenario` once and returns its digest, failing the test on any
/// step error (the step log is attached for diagnosis).
std::string RunOnce(const Scenario& scenario, ClusterConfig config) {
  auto result = RunScenario(scenario, config);
  if (!result.ok()) {
    ADD_FAILURE() << scenario.name << ": " << result.status().ToString();
    return "";
  }
  EXPECT_FALSE(result->digest.empty());
  return result->digest;
}

// -- DSL parser --------------------------------------------------------

TEST(ScenarioDslTest, ParsesEveryVerb) {
  auto parsed = ParseScenario("all-verbs", R"(# comment line
genesis 4 6 2
spends 3   # trailing comment
mine
link 1 reorder
kill 2
restart 2
heal
overload 16 50
check converged
check diverged 1 2
check record
)");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->steps.size(), 11u);
  EXPECT_EQ(parsed->steps[0].kind, Step::Kind::kGenesis);
  EXPECT_EQ(parsed->steps[0].b, 6u);
  EXPECT_EQ(parsed->steps[3].link, LinkMode::kReorder);
  EXPECT_EQ(parsed->steps[9].kind, Step::Kind::kCheckDiverged);
  EXPECT_EQ(parsed->steps[9].peers, (std::vector<size_t>{1, 2}));
  EXPECT_EQ(parsed->steps[10].line, 12u);
}

TEST(ScenarioDslTest, RejectsMalformedScripts) {
  struct Case {
    const char* text;
    const char* why;
  } cases[] = {
      {"fnord 1\n", "unknown verb"},
      {"genesis 4 6\n", "missing operand"},
      {"genesis 0 6 2\n", "zero operand"},
      {"spends many\n", "malformed count"},
      {"mine now\n", "extra operand"},
      {"link 1 sideways\n", "unknown link mode"},
      {"check diverged\n", "diverged without peers"},
      {"check maybe\n", "unknown check"},
      {"overload 0 50\n", "zero requests"},
      {"", "empty scenario"},
      {"# only a comment\n", "comment-only scenario"},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(c.why);
    auto parsed = ParseScenario("bad", c.text);
    ASSERT_FALSE(parsed.ok());
    EXPECT_TRUE(parsed.status().IsInvalidArgument())
        << parsed.status().ToString();
  }
}

TEST(ScenarioDslTest, BuiltinLibraryHasTheRequiredScenarios) {
  const auto& builtins = BuiltinScenarios();
  ASSERT_GE(builtins.size(), 4u);
  for (const char* name :
       {"convergence-4", "partition-heal", "kill-restore", "overload-shed"}) {
    SCOPED_TRACE(name);
    const Scenario* found = FindBuiltinScenario(name);
    ASSERT_NE(found, nullptr);
    EXPECT_FALSE(found->steps.empty());
    EXPECT_FALSE(found->description.empty());
  }
  EXPECT_EQ(FindBuiltinScenario("no-such-scenario"), nullptr);
}

// -- determinism: same seed => same digest, twice ----------------------

class BuiltinScenarioTest : public ::testing::TestWithParam<const char*> {};

TEST_P(BuiltinScenarioTest, RunsDeterministicallyInProcess) {
  const Scenario* scenario = FindBuiltinScenario(GetParam());
  ASSERT_NE(scenario, nullptr);
  std::string first =
      RunOnce(*scenario, BaseConfig(std::string(GetParam()) + "-a"));
  ASSERT_FALSE(first.empty());
  std::string second =
      RunOnce(*scenario, BaseConfig(std::string(GetParam()) + "-b"));
  // Same seed, fresh cluster, different workdir: identical digest.
  EXPECT_EQ(first, second);
}

INSTANTIATE_TEST_SUITE_P(AllBuiltins, BuiltinScenarioTest,
                         ::testing::Values("convergence-4", "partition-heal",
                                           "kill-restore", "overload-shed",
                                           "relay-chaos"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& ch : name) {
                             if (ch == '-') ch = '_';
                           }
                           return name;
                         });

TEST(RegtestSeedTest, DifferentSeedsDiverge) {
  const Scenario* scenario = FindBuiltinScenario("convergence-4");
  ASSERT_NE(scenario, nullptr);
  ClusterConfig a = BaseConfig("seed-a");
  ClusterConfig b = BaseConfig("seed-b");
  b.seed = 2;
  std::string digest_a = RunOnce(*scenario, a);
  std::string digest_b = RunOnce(*scenario, b);
  ASSERT_FALSE(digest_a.empty());
  ASSERT_FALSE(digest_b.empty());
  // The digest actually covers the event stream — a different seed
  // produces different spends, hence a different fingerprint.
  EXPECT_NE(digest_a, digest_b);
}

// -- cross-mode: spawned daemons must land on the same digest ----------

class DaemonModeTest : public ::testing::TestWithParam<const char*> {
 protected:
  /// The build exports TM_NODE_BIN; running the binary by hand without
  /// it skips rather than fails.
  static std::string TmNodeBinary() {
    const char* env = std::getenv("TM_NODE_BIN");
    return env == nullptr ? "" : env;
  }
};

TEST_P(DaemonModeTest, DaemonDigestMatchesInProcess) {
  std::string binary = TmNodeBinary();
  if (binary.empty()) {
    GTEST_SKIP() << "TM_NODE_BIN not set; daemon mode unavailable";
  }
  const Scenario* scenario = FindBuiltinScenario(GetParam());
  ASSERT_NE(scenario, nullptr);

  std::string inproc =
      RunOnce(*scenario, BaseConfig(std::string(GetParam()) + "-ip"));
  ASSERT_FALSE(inproc.empty());

  ClusterConfig daemon = BaseConfig(std::string(GetParam()) + "-dm");
  daemon.mode = ClusterMode::kDaemon;
  daemon.tm_node_binary = binary;
  std::string spawned = RunOnce(*scenario, daemon);
  ASSERT_FALSE(spawned.empty());
  // The digest is mode-blind: real processes over real sockets replay
  // the exact event stream the in-process cluster produced.
  EXPECT_EQ(inproc, spawned);
}

INSTANTIATE_TEST_SUITE_P(CrossMode, DaemonModeTest,
                         ::testing::Values("convergence-4", "kill-restore"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& ch : name) {
                             if (ch == '-') ch = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace tokenmagic::testnet
