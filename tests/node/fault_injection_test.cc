// Fault-injection suite (ctest label: fault): deterministic corruption,
// crash, and adversarial-ordering schedules against the node and the
// snapshot subsystem. The invariant under every fault: the node is never
// left inconsistent — restores either fail loudly or reproduce the exact
// state, crashes never clobber the last good snapshot, and flipped or
// scrambled submissions can lose liveness but not consistency.
#include "node/fault_injection.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/progressive.h"
#include "node/snapshot.h"
#include "node/wallet.h"

namespace tokenmagic::node {
namespace {

/// A node with activity (mirrors the snapshot-test fixture), with an
/// optional FaultInjector wired into the node's verdict path.
struct LiveState {
  FaultInjector faults{42};
  Node node;
  Wallet alice;
  Wallet bob;

  explicit LiveState(bool wire_faults = false)
      : node(Config(wire_faults ? &faults : nullptr)),
        alice("a", &node, 1),
        bob("b", &node, 2) {
    std::vector<std::vector<crypto::Point>> grants;
    for (int i = 0; i < 10; ++i) {
      grants.push_back({alice.NewOutputKey()});
      grants.push_back({bob.NewOutputKey()});
    }
    auto minted = node.Genesis(grants);
    for (size_t i = 0; i < minted.size(); ++i) {
      Wallet& owner = (i % 2 == 0) ? alice : bob;
      for (chain::TokenId t : minted[i]) (void)owner.Claim(t);
    }
    core::ProgressiveSelector selector;
    for (chain::TokenId t : alice.SpendableTokens()) {
      if (node.ledger().size() >= 2) break;
      (void)alice.Spend(&node, t, {2.0, 3}, selector,
                        {bob.NewOutputKey()}, "spend");
      node.MineBlock();
    }
  }

  NodeConfig Config(FaultInjector* injector) {
    NodeConfig config;
    config.lambda = 64;
    config.faults = injector;
    return config;
  }
};

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(FaultInjectorTest, SchedulesAreDeterministicPerSeed) {
  const std::string bytes = "header\nalpha,1\nbeta,2\ngamma,3\n";
  FaultInjector a(7), b(7), c(8);
  EXPECT_EQ(a.CorruptBytes(bytes, 4), b.CorruptBytes(bytes, 4));
  EXPECT_EQ(a.TruncateBytes(bytes), b.TruncateBytes(bytes));
  EXPECT_EQ(a.DuplicateLine(bytes), b.DuplicateLine(bytes));
  EXPECT_EQ(a.SwapLines(bytes), b.SwapLines(bytes));
  EXPECT_EQ(a.ScrambleOrder(6, 2), b.ScrambleOrder(6, 2));
  // A different seed produces a different schedule somewhere.
  EXPECT_NE(a.CorruptBytes(bytes, 4), c.CorruptBytes(bytes, 4));
}

TEST(FaultInjectorTest, CorruptBytesPreservesHeaderAndChangesBody) {
  FaultInjector injector(1);
  const std::string bytes = "header-line\nbody,1\nbody,2\n";
  std::string mutated = injector.CorruptBytes(bytes, 3);
  EXPECT_NE(mutated, bytes);
  EXPECT_EQ(mutated.substr(0, 12), bytes.substr(0, 12));  // "header-line\n"
  EXPECT_EQ(mutated.size(), bytes.size());
}

TEST(FaultInjectorTest, VerdictFilterOnlyFlipsAccepts) {
  FaultInjector injector(1);
  injector.FlipNextVerdicts(2);
  // A failing verdict passes through unflipped and unconsumed.
  auto rejected = injector.FilterVerdict(
      common::Status::VerificationFailed("already bad"));
  EXPECT_TRUE(rejected.IsVerificationFailed());
  EXPECT_EQ(injector.verdicts_flipped(), 0u);
  // Accepts are flipped while armed, then pass through again.
  EXPECT_FALSE(injector.FilterVerdict(common::Status::OK()).ok());
  EXPECT_FALSE(injector.FilterVerdict(common::Status::OK()).ok());
  EXPECT_TRUE(injector.FilterVerdict(common::Status::OK()).ok());
  EXPECT_EQ(injector.verdicts_flipped(), 2u);
}

TEST(TransportFaultTest, ScheduleIsDeterministicPerSeed) {
  FaultInjector a(11), b(11), c(12);
  a.ArmTransportFaults(8);
  b.ArmTransportFaults(8);
  c.ArmTransportFaults(8);
  std::vector<FaultInjector::TransportFault> seq_a, seq_b, seq_c;
  for (int i = 0; i < 8; ++i) {
    seq_a.push_back(a.NextTransportFault().fault);
    seq_b.push_back(b.NextTransportFault().fault);
    seq_c.push_back(c.NextTransportFault().fault);
  }
  EXPECT_EQ(seq_a, seq_b);
  EXPECT_NE(seq_a, seq_c);  // a different seed reorders the family draws
  EXPECT_EQ(a.transport_faults_injected(), 8u);
}

TEST(TransportFaultTest, ArmedCountIsExactThenDisarms) {
  FaultInjector injector(3);
  injector.ArmTransportFaults(2);
  EXPECT_NE(injector.NextTransportFault().fault,
            FaultInjector::TransportFault::kNone);
  EXPECT_NE(injector.NextTransportFault().fault,
            FaultInjector::TransportFault::kNone);
  // Disarmed: every further draw is a no-fault plan.
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(injector.NextTransportFault().fault,
              FaultInjector::TransportFault::kNone);
  }
  EXPECT_EQ(injector.transport_faults_injected(), 2u);
}

TEST(TransportFaultTest, SingleFamilyRestrictionAndDelayParameters) {
  FaultInjector injector(5);
  injector.ArmTransportFaults(
      4, {FaultInjector::TransportFault::kDelayResponse},
      /*delay_millis=*/7);
  for (int i = 0; i < 4; ++i) {
    auto plan = injector.NextTransportFault();
    EXPECT_EQ(plan.fault, FaultInjector::TransportFault::kDelayResponse);
    EXPECT_EQ(plan.delay_millis, 7u);
  }
}

TEST(TransportFaultTest, RateScheduleFiresApproximatelyAtRate) {
  FaultInjector injector(9);
  injector.ArmTransportFaultRate(0.25);
  int fired = 0;
  for (int i = 0; i < 4000; ++i) {
    if (injector.NextTransportFault().fault !=
        FaultInjector::TransportFault::kNone) {
      ++fired;
    }
  }
  // Deterministic per seed; generous band around 1000.
  EXPECT_GT(fired, 800);
  EXPECT_LT(fired, 1200);
}

TEST(TransportFaultTest, CorruptFrameChangesExactlyOneByte) {
  FaultInjector injector(21);
  std::string frame("\x08\x00\x00\x00payload!", 12);
  std::string mutated = injector.CorruptFrame(frame);
  ASSERT_EQ(mutated.size(), frame.size());
  int diffs = 0;
  for (size_t i = 0; i < frame.size(); ++i) {
    if (frame[i] != mutated[i]) ++diffs;
  }
  EXPECT_EQ(diffs, 1);
}

TEST(TransportFaultTest, TruncateFrameKeepsStrictPrefix) {
  FaultInjector injector(22);
  std::string frame(64, 'x');
  for (int i = 0; i < 32; ++i) {
    std::string cut = injector.TruncateFrame(frame);
    EXPECT_GE(cut.size(), 1u);
    EXPECT_LT(cut.size(), frame.size());
    EXPECT_EQ(frame.compare(0, cut.size(), cut), 0);
  }
  // Sub-2-byte frames cannot be strictly truncated; passed through.
  EXPECT_EQ(injector.TruncateFrame("z"), "z");
}

// Snapshot fuzz corpus: under every byte-level fault family and many
// seeds, restore either fails with a typed error or reproduces the exact
// original state. It never aborts and never misparses.
TEST(SnapshotFaultTest, CorruptionCorpusNeverMisparses) {
  LiveState live;
  const std::string snapshot = SnapshotToString(live.node);
  size_t errors = 0, identical = 0;
  for (uint64_t seed = 0; seed < 25; ++seed) {
    FaultInjector injector(seed);
    const std::string mutations[] = {
        injector.CorruptBytes(snapshot, 1 + seed % 5),
        injector.TruncateBytes(snapshot),
        injector.DuplicateLine(snapshot),
        injector.SwapLines(snapshot),
    };
    for (const std::string& mutated : mutations) {
      auto restored = NodeFromSnapshot(mutated, {});
      if (!restored.ok()) {
        ++errors;
        continue;
      }
      // A surviving mutation must have been semantically inert (e.g. a
      // flipped comment byte): the restored state serializes identically.
      EXPECT_EQ(SnapshotToString(**restored), snapshot);
      ++identical;
    }
  }
  // The corpus must actually exercise the rejection paths.
  EXPECT_GT(errors, 50u) << "identical=" << identical;
}

TEST(SnapshotFaultTest, HandCraftedCorpusIsRejected) {
  LiveState live;
  const std::string snapshot = SnapshotToString(live.node);

  // Wrong version header.
  std::string v1 = snapshot;
  v1.replace(0, v1.find('\n'), "tokenmagic-snapshot v1");
  EXPECT_FALSE(NodeFromSnapshot(v1, {}).ok());

  // Garbage scalar field in the first block record.
  std::string garbage = snapshot;
  size_t pos = garbage.find("block,");
  ASSERT_NE(pos, std::string::npos);
  garbage.replace(pos, 6, "block,x");
  EXPECT_FALSE(NodeFromSnapshot(garbage, {}).ok());

  // Duplicated image record (double-registers a key image).
  size_t image_pos = snapshot.find("image,");
  ASSERT_NE(image_pos, std::string::npos);
  size_t image_end = snapshot.find('\n', image_pos);
  std::string dup = snapshot;
  dup.insert(image_pos,
             snapshot.substr(image_pos, image_end - image_pos + 1));
  EXPECT_FALSE(NodeFromSnapshot(dup, {}).ok());

  // Truncated mid-record and truncated before the trailer.
  EXPECT_FALSE(NodeFromSnapshot(snapshot.substr(0, image_pos + 3), {}).ok());
  EXPECT_FALSE(
      NodeFromSnapshot(snapshot.substr(0, snapshot.rfind("end,")), {}).ok());

  // Record count tampering.
  std::string miscounted = snapshot;
  size_t end_pos = miscounted.rfind("end,");
  miscounted.replace(end_pos, std::string::npos, "end,9999\n");
  EXPECT_FALSE(NodeFromSnapshot(miscounted, {}).ok());
}

// Crash consistency: a write that dies mid-stream must leave the previous
// snapshot readable and intact.
TEST(SnapshotFaultTest, MidWriteCrashPreservesLastGoodSnapshot) {
  LiveState live;
  const std::string path = TempPath("tm_fault_midwrite.snapshot");
  SaveOptions plain;
  plain.retry.max_attempts = 1;
  ASSERT_TRUE(SaveSnapshot(live.node, path, plain).ok());
  const size_t rings_before = live.node.ledger().size();

  // Advance the node, then crash the save of the new state.
  core::ProgressiveSelector selector;
  auto spendable = live.bob.SpendableTokens();
  ASSERT_FALSE(spendable.empty());
  ASSERT_TRUE(live.bob
                  .Spend(&live.node, spendable[0], {2.0, 3}, selector,
                         {live.alice.NewOutputKey()}, "doomed save")
                  .ok());
  live.node.MineBlock();

  FaultInjector injector(3);
  injector.FailNextWrites(1, 0.4);
  SaveOptions faulty;
  faulty.retry.max_attempts = 1;  // no retry: the crash is final
  faulty.faults = &injector;
  auto status = SaveSnapshot(live.node, path, faulty);
  EXPECT_TRUE(status.IsIoError()) << status.ToString();

  // The file at `path` still holds the previous, fully valid state.
  auto restored = LoadSnapshot(path, {});
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ((*restored)->ledger().size(), rings_before);
  // And the partial temp file is itself rejected, not misparsed.
  auto partial = LoadSnapshot(path + ".tmp", {});
  EXPECT_FALSE(partial.ok());

  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
}

TEST(SnapshotFaultTest, RetryRecoversFromTransientFaults) {
  LiveState live;
  const std::string path = TempPath("tm_fault_retry.snapshot");
  FaultInjector injector(5);
  injector.FailNextWrites(1);
  injector.FailNextRenames(1);
  SaveOptions options;
  options.retry.max_attempts = 3;  // 1 write crash + 1 rename failure
  options.faults = &injector;
  // (The default sleeper is a no-op; backoff determinism is covered in
  // common/retry_test.cc.)
  auto status = SaveSnapshot(live.node, path, options);
  ASSERT_TRUE(status.ok()) << status.ToString();
  auto restored = LoadSnapshot(path, {});
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ((*restored)->ledger().size(), live.node.ledger().size());
  std::remove(path.c_str());
}

TEST(SnapshotFaultTest, RenameFaultWithoutRetryLeavesTargetAbsent) {
  LiveState live;
  const std::string path = TempPath("tm_fault_rename.snapshot");
  std::remove(path.c_str());
  FaultInjector injector(6);
  injector.FailNextRenames(1);
  SaveOptions options;
  options.retry.max_attempts = 1;
  options.faults = &injector;
  EXPECT_TRUE(SaveSnapshot(live.node, path, options).IsIoError());
  // The commit point never happened: no (possibly partial) target file.
  EXPECT_FALSE(LoadSnapshot(path, {}).ok());
  std::remove((path + ".tmp").c_str());
}

// Verdict flips: an armed accept->reject flip at mine time is recorded in
// MinedBlock::rejected and leaves the node fully consistent.
TEST(NodeFaultTest, MineTimeVerdictFlipIsAuditedAndHarmless) {
  LiveState live(/*wire_faults=*/true);
  core::ProgressiveSelector selector;
  auto spendable = live.bob.SpendableTokens();
  ASSERT_FALSE(spendable.empty());
  ASSERT_TRUE(live.bob
                  .Spend(&live.node, spendable[0], {2.0, 3}, selector,
                         {live.alice.NewOutputKey()}, "flipped")
                  .ok());
  const size_t rings_before = live.node.ledger().size();
  const size_t images_before = live.node.spent_images().size();

  live.faults.FlipNextVerdicts(1);
  MinedBlock mined = live.node.MineBlock();
  EXPECT_EQ(mined.transactions, 0u);
  ASSERT_EQ(mined.rejected.size(), 1u);
  EXPECT_EQ(mined.rejected[0].index, 0u);
  EXPECT_FALSE(mined.rejected[0].status.ok());
  EXPECT_NE(mined.rejected[0].status.message().find("fault injection"),
            std::string::npos);
  // Nothing was committed for the rejected transaction.
  EXPECT_EQ(live.node.ledger().size(), rings_before);
  EXPECT_EQ(live.node.spent_images().size(), images_before);
  EXPECT_EQ(live.node.mempool_size(), 0u);

  // The node keeps working once the fault schedule is exhausted.
  auto again = live.bob.SpendableTokens();
  ASSERT_FALSE(again.empty());
  ASSERT_TRUE(live.bob
                  .Spend(&live.node, again[0], {2.0, 3}, selector,
                         {live.alice.NewOutputKey()}, "after fault")
                  .ok());
  EXPECT_EQ(live.node.MineBlock().transactions, 1u);
}

TEST(NodeFaultTest, SubmitTimeVerdictFlipRejectsBeforePooling) {
  LiveState live(/*wire_faults=*/true);
  core::ProgressiveSelector selector;
  auto spendable = live.bob.SpendableTokens();
  ASSERT_FALSE(spendable.empty());
  live.faults.FlipNextVerdicts(1);
  auto status = live.bob.Spend(&live.node, spendable[0], {2.0, 3}, selector,
                               {live.alice.NewOutputKey()}, "flipped");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(live.node.mempool_size(), 0u);
}

// Mixed accept/reject audit: with several pooled transactions and one
// armed flip, MinedBlock::rejected pinpoints exactly the flipped one.
TEST(NodeFaultTest, RejectedIndexPinpointsTheFlippedTransaction) {
  LiveState live(/*wire_faults=*/true);
  core::ProgressiveSelector selector;
  auto spendable = live.bob.SpendableTokens();
  ASSERT_GE(spendable.size(), 2u);
  for (size_t i = 0; i < 2; ++i) {
    ASSERT_TRUE(live.bob
                    .Spend(&live.node, spendable[i], {2.0, 3}, selector,
                           {live.alice.NewOutputKey()}, "batch")
                    .ok());
  }
  live.faults.FlipNextVerdicts(1);  // hits the first mine-time re-verify
  MinedBlock mined = live.node.MineBlock();
  ASSERT_EQ(mined.rejected.size(), 1u);
  EXPECT_EQ(mined.rejected[0].index, 0u);
  EXPECT_EQ(mined.transactions, 1u);
}

// Duplicate and reordered submissions: every duplicate is rejected at the
// mempool door and the mined block commits each transaction at most once.
TEST(NodeFaultTest, ScrambledDuplicateSubmissionsStayConsistent) {
  LiveState live;
  core::ProgressiveSelector selector;
  auto spendable = live.bob.SpendableTokens();
  ASSERT_GE(spendable.size(), 3u);

  std::vector<SignedTransaction> txs;
  std::vector<std::vector<crypto::Point>> keys;
  for (size_t i = 0; i < 3; ++i) {
    keys.push_back({live.alice.NewOutputKey()});
    auto built = live.bob.BuildSpend(spendable[i], {2.0, 3}, selector,
                                     keys.back(), "scramble");
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    txs.push_back(std::move(built).value());
  }

  FaultInjector injector(11);
  std::vector<size_t> order = injector.ScrambleOrder(txs.size(), 3);
  EXPECT_EQ(order.size(), txs.size() + 3);

  size_t accepted = 0, rejected = 0;
  std::vector<bool> seen(txs.size(), false);
  for (size_t i : order) {
    auto status = live.node.SubmitTransaction(txs[i], keys[i]);
    if (status.ok()) {
      EXPECT_FALSE(seen[i]) << "duplicate submission accepted";
      seen[i] = true;
      ++accepted;
    } else {
      ++rejected;
    }
  }
  EXPECT_EQ(accepted, txs.size());
  EXPECT_EQ(rejected, 3u);
  EXPECT_EQ(live.node.mempool_size(), txs.size());

  const size_t images_before = live.node.spent_images().size();
  MinedBlock mined = live.node.MineBlock();
  // Every pooled transaction either mined or was audited as rejected.
  EXPECT_EQ(mined.transactions + mined.rejected.size(), txs.size());
  // Key images registered exactly once per mined transaction.
  EXPECT_EQ(live.node.spent_images().size(),
            images_before + mined.transactions);
}

}  // namespace
}  // namespace tokenmagic::node
