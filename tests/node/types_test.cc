#include "node/types.h"

#include <gtest/gtest.h>

namespace tokenmagic::node {
namespace {

SignedTransaction MakeTx() {
  SignedTransaction tx;
  tx.memo = "memo";
  tx.output_count = 2;
  TxInput input;
  input.ring = {1, 2, 3};
  tx.inputs.push_back(input);
  TxInput input2;
  input2.ring = {4, 5};
  tx.inputs.push_back(input2);
  return tx;
}

TEST(SigningMessageTest, DeterministicPerInput) {
  SignedTransaction tx = MakeTx();
  EXPECT_EQ(tx.SigningMessage(0), tx.SigningMessage(0));
  EXPECT_EQ(tx.SigningMessage(1), tx.SigningMessage(1));
  EXPECT_NE(tx.SigningMessage(0), tx.SigningMessage(1));
}

TEST(SigningMessageTest, BindsMemo) {
  SignedTransaction a = MakeTx();
  SignedTransaction b = MakeTx();
  b.memo = "other memo";
  EXPECT_NE(a.SigningMessage(0), b.SigningMessage(0));
}

TEST(SigningMessageTest, BindsOutputCount) {
  SignedTransaction a = MakeTx();
  SignedTransaction b = MakeTx();
  b.output_count = 3;
  EXPECT_NE(a.SigningMessage(0), b.SigningMessage(0));
}

TEST(SigningMessageTest, BindsRingMembers) {
  SignedTransaction a = MakeTx();
  SignedTransaction b = MakeTx();
  b.inputs[0].ring = {1, 2, 7};
  EXPECT_NE(a.SigningMessage(0), b.SigningMessage(0));
  // The *other* input's message is ring-local, so it stays unchanged.
  EXPECT_EQ(a.SigningMessage(1), b.SigningMessage(1));
}

TEST(SigningMessageTest, FixedDigestLength) {
  SignedTransaction tx = MakeTx();
  EXPECT_EQ(tx.SigningMessage(0).size(), 32u);
  EXPECT_EQ(tx.SigningMessage(1).size(), 32u);
}

}  // namespace
}  // namespace tokenmagic::node
