#include "node/snapshot.h"

#include <gtest/gtest.h>

#include "analysis/chain_reaction.h"
#include "core/progressive.h"
#include "common/strings.h"
#include "node/wallet.h"

namespace tokenmagic::node {
namespace {

/// Builds a node with activity: genesis grants for two wallets, a few
/// spends, mined blocks.
struct LiveState {
  Node node;
  Wallet alice;
  Wallet bob;

  LiveState() : node(Config()), alice("a", &node, 1), bob("b", &node, 2) {
    std::vector<std::vector<crypto::Point>> grants;
    for (int i = 0; i < 10; ++i) {
      grants.push_back({alice.NewOutputKey()});
      grants.push_back({bob.NewOutputKey()});
    }
    auto minted = node.Genesis(grants);
    for (size_t i = 0; i < minted.size(); ++i) {
      Wallet& owner = (i % 2 == 0) ? alice : bob;
      for (chain::TokenId t : minted[i]) (void)owner.Claim(t);
    }
    core::ProgressiveSelector selector;
    for (chain::TokenId t : alice.SpendableTokens()) {
      if (node.ledger().size() >= 2) break;
      (void)alice.Spend(&node, t, {2.0, 3}, selector,
                        {bob.NewOutputKey()}, "spend");
      node.MineBlock();
    }
  }

  static NodeConfig Config() {
    NodeConfig config;
    config.lambda = 64;
    return config;
  }
};

TEST(SnapshotTest, RoundTripPreservesChainState) {
  LiveState live;
  std::string snapshot = SnapshotToString(live.node);
  auto restored = NodeFromSnapshot(snapshot, LiveState::Config());
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();

  const Node& r = **restored;
  EXPECT_EQ(r.blockchain().block_count(),
            live.node.blockchain().block_count());
  EXPECT_EQ(r.blockchain().token_count(),
            live.node.blockchain().token_count());
  EXPECT_EQ(r.blockchain().transaction_count(),
            live.node.blockchain().transaction_count());
  EXPECT_EQ(r.ledger().size(), live.node.ledger().size());
  for (size_t i = 0; i < r.ledger().size(); ++i) {
    EXPECT_EQ(r.ledger().view(i).members,
              live.node.ledger().view(i).members);
    EXPECT_EQ(r.ledger().view(i).requirement,
              live.node.ledger().view(i).requirement);
  }
  EXPECT_EQ(r.keys().size(), live.node.keys().size());
  EXPECT_EQ(r.spent_images().size(), live.node.spent_images().size());
  // HT structure survives: the same adversary analysis results.
  auto a1 = analysis::ChainReactionAnalyzer::Analyze(
      live.node.ledger().Views());
  auto a2 = analysis::ChainReactionAnalyzer::Analyze(r.ledger().Views());
  EXPECT_EQ(a1.spent_tokens.size(), a2.spent_tokens.size());
}

TEST(SnapshotTest, RestoredNodeKeepsVerifying) {
  LiveState live;
  std::string snapshot = SnapshotToString(live.node);
  auto restored = NodeFromSnapshot(snapshot, LiveState::Config());
  ASSERT_TRUE(restored.ok());

  // A wallet pointed at the restored node can keep spending: keys match
  // because the KeyDirectory was restored.
  Wallet bob2("b", restored->get(), 2);  // same seed => same key stream
  // Re-derive bob's keys in the same order and claim his tokens.
  for (int i = 0; i < 24; ++i) bob2.NewOutputKey();
  size_t claimed = 0;
  for (chain::TokenId t : (*restored)->blockchain().AllTokens()) {
    if (bob2.Claim(t).ok()) ++claimed;
  }
  EXPECT_GT(claimed, 0u);
  core::ProgressiveSelector selector;
  auto spendable = bob2.SpendableTokens();
  ASSERT_FALSE(spendable.empty());
  auto st = bob2.Spend(restored->get(), spendable[0], {2.0, 3}, selector,
                       {bob2.NewOutputKey()}, "post-restore spend");
  EXPECT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ((*restored)->MineBlock().transactions, 1u);
}

TEST(SnapshotTest, DoubleSpendStillBlockedAfterRestore) {
  LiveState live;
  // Build a double-spend attempt against the live node but submit it to
  // the restored node: the key image came from a mined transaction, so
  // the restored registry must reject it.
  std::string snapshot = SnapshotToString(live.node);
  auto restored = NodeFromSnapshot(snapshot, LiveState::Config());
  ASSERT_TRUE(restored.ok());
  ASSERT_GT((*restored)->spent_images().size(), 0u);
  // The registry contents match the live node's.
  for (const std::string& hex : live.node.SpentImageHexList()) {
    std::vector<uint8_t> bytes;
    ASSERT_TRUE(common::HexDecode(hex, &bytes));
    std::array<uint8_t, 33> raw;
    std::copy(bytes.begin(), bytes.end(), raw.begin());
    auto point = crypto::Point::Decode(raw);
    ASSERT_TRUE(point.has_value());
    EXPECT_TRUE((*restored)->spent_images().Contains(*point));
  }
}

TEST(SnapshotTest, FileRoundTrip) {
  LiveState live;
  std::string path = ::testing::TempDir() + "/tm_snapshot_test.txt";
  ASSERT_TRUE(SaveSnapshot(live.node, path).ok());
  auto restored = LoadSnapshot(path, LiveState::Config());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ((*restored)->ledger().size(), live.node.ledger().size());
}

TEST(SnapshotTest, RejectsCorruptedInput) {
  EXPECT_FALSE(NodeFromSnapshot("", {}).ok());
  EXPECT_FALSE(NodeFromSnapshot("not a snapshot\n", {}).ok());
  LiveState live;
  std::string snapshot = SnapshotToString(live.node);
  // Unknown record type.
  EXPECT_FALSE(NodeFromSnapshot(snapshot + "bogus,1,2\n", {}).ok());
  // Malformed key point.
  EXPECT_FALSE(
      NodeFromSnapshot(snapshot + "key,0,zzzz\n", {}).ok());
  // tx record with no open block.
  std::string header_only = "tokenmagic-snapshot v1\ntx,0,1\n";
  EXPECT_FALSE(NodeFromSnapshot(header_only, {}).ok());
}

TEST(SnapshotTest, EmptyNodeRoundTrips) {
  Node empty;
  auto restored = NodeFromSnapshot(SnapshotToString(empty), {});
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ((*restored)->blockchain().block_count(), 0u);
  EXPECT_EQ((*restored)->ledger().size(), 0u);
}

}  // namespace
}  // namespace tokenmagic::node
