#include "node/verifier.h"

#include <gtest/gtest.h>

#include "core/progressive.h"
#include "node/node.h"
#include "node/wallet.h"

namespace tokenmagic::node {
namespace {

/// Fixture producing a valid transaction plus the node it targets.
struct VerifierFixture {
  Node node;
  Wallet alice;
  Wallet bob;
  SignedTransaction valid_tx;

  explicit VerifierFixture(VerifierPolicy policy = {})
      : node(Config(policy)), alice("a", &node, 10), bob("b", &node, 20) {
    std::vector<std::vector<crypto::Point>> grants;
    for (int i = 0; i < 12; ++i) {
      grants.push_back({alice.NewOutputKey()});
      grants.push_back({bob.NewOutputKey()});
    }
    auto minted = node.Genesis(grants);
    for (size_t i = 0; i < minted.size(); ++i) {
      Wallet& owner = (i % 2 == 0) ? alice : bob;
      for (chain::TokenId t : minted[i]) (void)owner.Claim(t);
    }
    core::ProgressiveSelector selector;
    auto tx = alice.BuildSpend(alice.SpendableTokens()[0], {2.0, 3},
                               selector, {bob.NewOutputKey()}, "fixture");
    EXPECT_TRUE(tx.ok());
    valid_tx = std::move(tx).value();
  }

  static NodeConfig Config(VerifierPolicy policy) {
    NodeConfig config;
    config.lambda = 64;
    config.verifier = policy;
    return config;
  }
};

TEST(VerifierTest, AcceptsValidTransaction) {
  VerifierFixture fx;
  EXPECT_TRUE(fx.node.MakeVerifier().Verify(fx.valid_tx).ok());
}

TEST(VerifierTest, RejectsEmptyTransaction) {
  VerifierFixture fx;
  SignedTransaction empty;
  EXPECT_TRUE(fx.node.MakeVerifier().Verify(empty).IsVerificationFailed());
  SignedTransaction no_outputs = fx.valid_tx;
  no_outputs.output_count = 0;
  EXPECT_TRUE(
      fx.node.MakeVerifier().Verify(no_outputs).IsVerificationFailed());
}

TEST(VerifierTest, RejectsUnknownRingToken) {
  VerifierFixture fx;
  SignedTransaction bad = fx.valid_tx;
  bad.inputs[0].ring.push_back(99999);
  EXPECT_TRUE(fx.node.MakeVerifier().Verify(bad).IsVerificationFailed());
}

TEST(VerifierTest, RejectsUnsortedRing) {
  VerifierFixture fx;
  SignedTransaction bad = fx.valid_tx;
  std::swap(bad.inputs[0].ring.front(), bad.inputs[0].ring.back());
  EXPECT_TRUE(fx.node.MakeVerifier().Verify(bad).IsVerificationFailed());
}

TEST(VerifierTest, RejectsRingBelowSizeFloor) {
  VerifierPolicy policy;
  policy.min_ring_size = 50;
  VerifierFixture fx(policy);
  EXPECT_TRUE(
      fx.node.MakeVerifier().Verify(fx.valid_tx).IsVerificationFailed());
}

TEST(VerifierTest, PolicyTogglesStrictDtrs) {
  // A ring satisfying (c, ell) but not (c, ell+1) passes only when the
  // strict-DTRS enforcement is off.
  VerifierPolicy lax;
  lax.enforce_strict_dtrs = false;
  VerifierFixture fx(lax);
  // Craft: declared requirement exactly matches the ring's theta.
  SignedTransaction tx = fx.valid_tx;
  // The wallet built the ring at strict (2,3) -> >= 4 HTs; declare (2,4):
  // strict mode would demand 5 HTs.
  size_t theta = analysis::DistinctHtCount(tx.inputs[0].ring,
                                           fx.node.ht_index());
  tx.inputs[0].requirement = {2.0, static_cast<int>(theta)};
  EXPECT_TRUE(fx.node.MakeVerifier().Verify(tx).ok());

  VerifierPolicy strict;
  strict.enforce_strict_dtrs = true;
  VerifierFixture fx2(strict);
  SignedTransaction tx2 = fx2.valid_tx;
  size_t theta2 = analysis::DistinctHtCount(tx2.inputs[0].ring,
                                            fx2.node.ht_index());
  tx2.inputs[0].requirement = {2.0, static_cast<int>(theta2)};
  EXPECT_TRUE(fx2.node.MakeVerifier().Verify(tx2).IsVerificationFailed());
}

TEST(VerifierTest, ConfigurationEnforcementToggle) {
  // With enforcement off, a partially-overlapping ring is only rejected
  // by the LSAG binding (which we keep valid here by reusing the
  // original ring), so a configuration violation alone must pass.
  VerifierPolicy lax;
  lax.enforce_configuration = false;
  VerifierFixture fx(lax);
  // Mine the valid tx to put an RS on the ledger.
  ASSERT_TRUE(fx.node
                  .SubmitTransaction(fx.valid_tx, {fx.bob.NewOutputKey()})
                  .ok());
  fx.node.MineBlock();

  // Second spend from bob whose ring will overlap the first RS
  // partially with near-certainty (it selects from the same batch but
  // without the configuration constraint the verifier won't care).
  core::ProgressiveSelector selector;
  auto tx2 = fx.bob.BuildSpend(fx.bob.SpendableTokens()[0], {2.0, 3},
                               selector, {fx.alice.NewOutputKey()}, "b");
  ASSERT_TRUE(tx2.ok());
  EXPECT_TRUE(fx.node.MakeVerifier().Verify(*tx2).ok());
}

TEST(VerifierTest, VerifyInputIndexOutOfRange) {
  VerifierFixture fx;
  EXPECT_TRUE(fx.node.MakeVerifier()
                  .VerifyInput(fx.valid_tx, 5)
                  .IsInvalidArgument());
}

TEST(KeyDirectoryTest, RegisterAndLookup) {
  KeyDirectory directory;
  common::Rng rng(1);
  crypto::Keypair kp = crypto::Keypair::Generate(&rng);
  EXPECT_FALSE(directory.Contains(7));
  directory.Register(7, kp.pub);
  EXPECT_TRUE(directory.Contains(7));
  EXPECT_EQ(directory.KeyOf(7), kp.pub);
  EXPECT_EQ(directory.size(), 1u);
  // Re-register overwrites.
  crypto::Keypair kp2 = crypto::Keypair::Generate(&rng);
  directory.Register(7, kp2.pub);
  EXPECT_EQ(directory.KeyOf(7), kp2.pub);
  EXPECT_EQ(directory.size(), 1u);
}

}  // namespace
}  // namespace tokenmagic::node
