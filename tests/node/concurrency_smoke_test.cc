// Concurrency smoke tests for the node's single-writer/multi-reader
// contract. These are the tests the `tsan` preset exists for: every
// scenario here races the documented-concurrent APIs against each other
// (snapshot readers vs a mining writer, parallel wallet submissions,
// shared fault injectors) so ThreadSanitizer can observe an actual
// interleaving, and the assertions pin the invariants that must survive
// it. They also pass single-threaded, so they run in every suite.
#include <atomic>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/chain_reaction.h"
#include "core/progressive.h"
#include "core/token_magic.h"
#include "node/fault_injection.h"
#include "node/node.h"
#include "node/wallet.h"

namespace tokenmagic::node {
namespace {

struct Network {
  Node node;
  Wallet alice;
  Wallet bob;

  explicit Network(size_t tokens_each = 12, size_t lambda = 64)
      : node(MakeConfig(lambda)),
        alice("alice", &node, 111),
        bob("bob", &node, 222) {
    std::vector<std::vector<crypto::Point>> grants;
    for (size_t i = 0; i < tokens_each; ++i) {
      grants.push_back({alice.NewOutputKey()});
      grants.push_back({bob.NewOutputKey()});
    }
    auto minted = node.Genesis(grants);
    for (size_t i = 0; i < minted.size(); ++i) {
      Wallet& owner = (i % 2 == 0) ? alice : bob;
      for (chain::TokenId t : minted[i]) {
        EXPECT_TRUE(owner.Claim(t).ok());
      }
    }
  }

  static NodeConfig MakeConfig(size_t lambda) {
    NodeConfig config;
    config.lambda = lambda;
    return config;
  }
};

// Pins the cache-coherence contract the tm-invalidates annotations
// describe: RebuildIndices (via MineBlock) drops the cached analysis
// snapshot, so a borrower that kept the old pointer reads the *old*
// history (alive, not dangling) and a re-fetch observes the new one.
// This is the stale-pointer repro: before the shared_ptr cache, the
// mined block would have left the old reference dangling.
TEST(ConcurrencySmokeTest, RebuildIndicesInvalidatesCachedContext) {
  Network net(12);
  core::ProgressiveSelector selector;

  auto before = net.node.AnalysisSnapshotShared(0);
  ASSERT_NE(before, nullptr);
  const size_t history_before = before->history.size();
  EXPECT_EQ(history_before, 0u);  // genesis only, no RSs yet

  chain::TokenId token = net.alice.SpendableTokens()[0];
  ASSERT_TRUE(net.alice
                  .Spend(&net.node, token, {2.0, 3}, selector,
                         {net.bob.NewOutputKey()}, "pay")
                  .ok());
  net.node.MineBlock();

  auto after = net.node.AnalysisSnapshotShared(0);
  ASSERT_NE(after, nullptr);
  // The cache was invalidated: a fresh snapshot object, not the old one.
  EXPECT_NE(before.get(), after.get());
  // The new snapshot sees the mined RS; the stale one still (safely)
  // describes the pre-mutation ledger.
  EXPECT_EQ(after->history.size(), 1u);
  EXPECT_EQ(before->history.size(), history_before);
  // The stale snapshot's context is still fully usable — the interned
  // columns are owned by the snapshot, not by the node.
  EXPECT_EQ(analysis::ChainReactionAnalyzer::CountInferableSpent(
                before->context),
            0u);
}

// Re-fetching through the reference-returning convenience API observes
// the invalidation too (the reference is re-looked-up per call).
TEST(ConcurrencySmokeTest, SnapshotForReflectsRebuild) {
  Network net(12);
  core::ProgressiveSelector selector;
  EXPECT_EQ(net.node.AnalysisSnapshotFor(0).history.size(), 0u);
  chain::TokenId token = net.alice.SpendableTokens()[0];
  ASSERT_TRUE(net.alice
                  .Spend(&net.node, token, {2.0, 3}, selector,
                         {net.bob.NewOutputKey()}, "pay")
                  .ok());
  net.node.MineBlock();
  EXPECT_EQ(net.node.AnalysisSnapshotFor(0).history.size(), 1u);
}

// Readers loop AnalysisSnapshotShared + an analysis probe while a writer
// thread mines blocks underneath them. Each reader's snapshot is
// self-contained, so the probe runs on a consistent history even while
// the ledger moves; the per-batch history size may only grow.
TEST(ConcurrencySmokeTest, SnapshotReadersRaceMiningWriter) {
  Network net(16);
  constexpr int kReaders = 4;
  constexpr int kSpends = 4;

  std::atomic<bool> done{false};
  std::atomic<int> probes{0};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&net, &done, &probes] {
      size_t last_seen = 0;
      while (!done.load(std::memory_order_acquire)) {
        auto snapshot = net.node.AnalysisSnapshotShared(0);
        ASSERT_NE(snapshot, nullptr);
        // History per batch only grows as blocks are mined.
        EXPECT_GE(snapshot->history.size(), last_seen);
        last_seen = snapshot->history.size();
        // The cascade must never infer more spends than there are RSs.
        size_t inferable = analysis::ChainReactionAnalyzer::
            CountInferableSpent(snapshot->context);
        EXPECT_LE(inferable, snapshot->history.size());
        probes.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  core::ProgressiveSelector selector;
  size_t mined_rs = 0;
  for (int i = 0; i < kSpends; ++i) {
    Wallet& spender = (i % 2 == 0) ? net.alice : net.bob;
    Wallet& receiver = (i % 2 == 0) ? net.bob : net.alice;
    auto spendable = spender.SpendableTokens();
    ASSERT_FALSE(spendable.empty());
    auto verdict = spender.Spend(&net.node, spendable[0], {2.0, 3},
                                 selector, {receiver.NewOutputKey()}, "race");
    if (verdict.ok()) {
      MinedBlock block = net.node.MineBlock();
      mined_rs += block.transactions;
    }
  }
  done.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  EXPECT_GT(probes.load(), 0);
  EXPECT_EQ(net.node.AnalysisSnapshotShared(0)->history.size(), mined_rs);
}

// Many wallets submit concurrently. SubmitTransaction serializes them
// under the node's writer lock; rings selected concurrently against the
// same snapshot may still conflict at mine time (the practical
// configuration moved), which must surface as recorded rejections —
// never as lost or double-counted transactions.
TEST(ConcurrencySmokeTest, ConcurrentWalletSpends) {
  constexpr size_t kWallets = 4;
  NodeConfig config;
  config.lambda = 64;
  Node node(config);
  std::vector<std::unique_ptr<Wallet>> wallets;
  std::vector<std::vector<crypto::Point>> grants;
  for (size_t w = 0; w < kWallets; ++w) {
    wallets.push_back(
        std::make_unique<Wallet>("w" + std::to_string(w), &node, 1000 + w));
    for (int i = 0; i < 8; ++i) {
      grants.push_back({wallets[w]->NewOutputKey()});
    }
  }
  auto minted = node.Genesis(grants);
  for (size_t i = 0; i < minted.size(); ++i) {
    for (chain::TokenId t : minted[i]) {
      ASSERT_TRUE(wallets[i / 8]->Claim(t).ok());
    }
  }

  core::ProgressiveSelector selector;
  std::atomic<size_t> accepted{0};
  std::vector<std::thread> threads;
  threads.reserve(kWallets);
  for (size_t w = 0; w < kWallets; ++w) {
    threads.emplace_back([&, w] {
      Wallet& wallet = *wallets[w];
      chain::TokenId token = wallet.SpendableTokens()[0];
      auto verdict = wallet.Spend(&node, token, {2.0, 3}, selector,
                                  {wallet.NewOutputKey()}, "concurrent");
      if (verdict.ok()) accepted.fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_GT(accepted.load(), 0u);
  EXPECT_EQ(node.mempool_size(), accepted.load());

  MinedBlock block = node.MineBlock();
  // Every pooled transaction is accounted for: mined or rejected.
  EXPECT_EQ(block.transactions + block.rejected.size(), accepted.load());
  EXPECT_EQ(node.ledger().size(), block.transactions);
  EXPECT_EQ(node.mempool_size(), 0u);
}

// Concurrent const probes on one TokenMagic share the cached batch
// snapshot; the cache fill itself must be race-free.
TEST(ConcurrencySmokeTest, ConcurrentTokenMagicProbes) {
  Network net(16);
  core::TokenMagicConfig config;
  config.lambda = 64;
  core::TokenMagic magic(&net.node.blockchain(), config);

  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  std::atomic<int> ok_instances{0};
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&magic, &ok_instances] {
      for (chain::TokenId t = 0; t < 8; ++t) {
        auto instance = magic.InstanceFor(t, {2.0, 3});
        if (!instance.ok()) continue;
        EXPECT_EQ(instance->target, t);
        EXPECT_NE(instance->context, nullptr);
        EXPECT_TRUE(magic.LiquidityAllows(t, {t}));
        ok_instances.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_GT(ok_instances.load(), 0);
}

// Regression for the InstanceFor snapshot lifetime: TokenMagic's
// snapshot cache is a single slot, so probing a token of a *different*
// batch reseats it while an earlier instance is still in use. Instances
// co-own their snapshot (SelectionInput::owner), so the evicted snapshot
// must stay alive for as long as any instance reads its history/context.
// Threads deliberately alternate batches to force constant eviction (the
// same-batch test above never evicts and cannot catch this).
TEST(ConcurrencySmokeTest, ConcurrentTokenMagicProbesAcrossBatches) {
  chain::Blockchain bc;
  for (int b = 0; b < 4; ++b) {
    std::vector<uint32_t> counts(8, 1);
    bc.AddBlock(b, counts);
  }
  core::TokenMagicConfig config;
  config.lambda = 8;  // 4 blocks x 8 tokens -> 4 batches of 8
  core::TokenMagic magic(&bc, config);
  ASSERT_EQ(magic.batches().batch_count(), 4u);

  constexpr int kThreads = 4;
  constexpr int kRounds = 16;
  std::atomic<int> ok_instances{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&magic, &ok_instances, i] {
      for (int round = 0; round < kRounds; ++round) {
        chain::TokenId mine = static_cast<chain::TokenId>(
            ((i + round) % 4) * 8 + round % 8);
        auto instance = magic.InstanceFor(mine, {2.0, 3});
        ASSERT_TRUE(instance.ok());
        // Evict: probe a token one batch over, reseating the cache slot
        // (other threads do the same concurrently).
        chain::TokenId other = static_cast<chain::TokenId>((mine + 8) % 32);
        auto evictor = magic.InstanceFor(other, {2.0, 3});
        ASSERT_TRUE(evictor.ok());
        // The first instance must still be fully readable: its spans and
        // context point into the snapshot it co-owns, not the cache slot.
        EXPECT_EQ(instance->universe.size(), 8u);
        EXPECT_LE(analysis::ChainReactionAnalyzer::CountInferableSpent(
                      *instance->context),
                  instance->history.size());
        ok_instances.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ok_instances.load(), kThreads * kRounds);
}

// Sealed-epoch lifetime under a racing writer: readers retain snapshots
// of *every* batch — superseded ones included, keyed by identity — while
// the writer mines blocks that seal new epochs onto the per-batch chains
// (including blocks that open brand-new batches). Every retained sealed
// view must stay fully readable (columns, inverted index, cascade) no
// matter how many epochs are appended after it. Before the epoch chain a
// full rebuild guaranteed this by copying; now it is the generation-
// buffer contract, and this is the test the TSan lane pins it with.
TEST(ConcurrencySmokeTest, SelectorProbesRaceEpochSealsAcrossBatches) {
  Network net(16, /*lambda=*/4);  // mined blocks open fresh batches fast
  constexpr int kReaders = 4;
  constexpr int kSpends = 6;

  std::atomic<bool> done{false};
  std::atomic<size_t> batches_published{1};  // the genesis batch
  std::atomic<int> sealed_probes{0};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&net, &done, &batches_published, &sealed_probes] {
      std::unordered_map<const void*,
                         std::shared_ptr<const Node::BatchAnalysisSnapshot>>
          held;
      while (!done.load(std::memory_order_acquire)) {
        size_t count = batches_published.load(std::memory_order_acquire);
        for (size_t b = 0; b < count; ++b) {
          auto snapshot = net.node.AnalysisSnapshotShared(b);
          ASSERT_NE(snapshot, nullptr);
          held.emplace(snapshot.get(), snapshot);
        }
        for (const auto& [_, old] : held) {
          EXPECT_EQ(old->context.rs_count(), old->history.size());
          EXPECT_LE(analysis::ChainReactionAnalyzer::CountInferableSpent(
                        old->context),
                    old->history.size());
        }
        sealed_probes.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  core::ProgressiveSelector selector;
  for (int i = 0; i < kSpends; ++i) {
    Wallet& spender = (i % 2 == 0) ? net.alice : net.bob;
    Wallet& receiver = (i % 2 == 0) ? net.bob : net.alice;
    auto spendable = spender.SpendableTokens();
    ASSERT_FALSE(spendable.empty());
    (void)spender.Spend(&net.node, spendable[0], {2.0, 3}, selector,
                        {receiver.NewOutputKey()}, "seal-race");
    net.node.MineBlock();
    // Safe outside the lock: only MineBlock (this thread) mutates the
    // batch index, and the batch count only grows, so readers can probe
    // any index below a published count forever.
    batches_published.store(net.node.batches().batch_count(),
                            std::memory_order_release);
  }
  done.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  EXPECT_GT(sealed_probes.load(), 0);
}

// A shared FaultInjector consumes exactly the armed number of verdict
// flips across racing threads — no lost or duplicated faults.
TEST(ConcurrencySmokeTest, FaultInjectorSharedAcrossThreads) {
  FaultInjector faults(7);
  constexpr int kArmed = 10;
  constexpr int kThreads = 4;
  constexpr int kCallsPerThread = 25;
  faults.FlipNextVerdicts(kArmed);

  std::atomic<int> flipped{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&faults, &flipped] {
      for (int c = 0; c < kCallsPerThread; ++c) {
        if (!faults.FilterVerdict(common::Status::OK()).ok()) {
          flipped.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(flipped.load(), kArmed);
  EXPECT_EQ(faults.verdicts_flipped(), static_cast<size_t>(kArmed));
}

}  // namespace
}  // namespace tokenmagic::node
