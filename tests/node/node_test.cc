#include "node/node.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "core/progressive.h"
#include "node/wallet.h"

namespace tokenmagic::node {
namespace {

/// A two-wallet network fixture: alice and bob each receive a genesis
/// grant of `tokens_each` tokens across several transactions so the HT
/// structure is diverse enough for selection.
struct Network {
  Node node;
  Wallet alice;
  Wallet bob;

  explicit Network(size_t tokens_each = 12, size_t lambda = 64)
      : node(MakeConfig(lambda)),
        alice("alice", &node, 111),
        bob("bob", &node, 222) {
    std::vector<std::vector<crypto::Point>> grants;
    // Interleave 1-token grants: every token gets its own HT.
    for (size_t i = 0; i < tokens_each; ++i) {
      grants.push_back({alice.NewOutputKey()});
      grants.push_back({bob.NewOutputKey()});
    }
    auto minted = node.Genesis(grants);
    for (size_t i = 0; i < minted.size(); ++i) {
      Wallet& owner = (i % 2 == 0) ? alice : bob;
      for (chain::TokenId t : minted[i]) {
        EXPECT_TRUE(owner.Claim(t).ok());
      }
    }
  }

  static NodeConfig MakeConfig(size_t lambda) {
    NodeConfig config;
    config.lambda = lambda;
    return config;
  }
};

TEST(NodeTest, GenesisMintsAndRegistersKeys) {
  Network net(4);
  EXPECT_EQ(net.node.blockchain().token_count(), 8u);
  EXPECT_EQ(net.node.keys().size(), 8u);
  EXPECT_EQ(net.alice.balance(), 4u);
  EXPECT_EQ(net.bob.balance(), 4u);
}

TEST(NodeTest, WalletClaimRejectsForeignTokens) {
  Network net(2);
  // Token 0 belongs to alice; bob cannot claim it.
  EXPECT_TRUE(net.bob.Claim(0).IsNotFound());
}

TEST(NodeTest, SpendSubmitMineLifecycle) {
  Network net(12);
  core::ProgressiveSelector selector;
  chain::TokenId token = net.alice.SpendableTokens()[0];
  auto receiver_key = net.bob.NewOutputKey();
  ASSERT_TRUE(net.alice
                  .Spend(&net.node, token, {2.0, 3}, selector,
                         {receiver_key}, "pay bob")
                  .ok());
  EXPECT_EQ(net.node.mempool_size(), 1u);

  MinedBlock block = net.node.MineBlock();
  EXPECT_EQ(block.transactions, 1u);
  ASSERT_EQ(block.outputs.size(), 1u);
  ASSERT_EQ(block.outputs[0].size(), 1u);
  EXPECT_EQ(net.node.mempool_size(), 0u);
  EXPECT_EQ(net.node.ledger().size(), 1u);

  // Bob claims the freshly minted token and can see it in his balance.
  EXPECT_TRUE(net.bob.Claim(block.outputs[0][0]).ok());
  EXPECT_EQ(net.bob.balance(), 13u);
}

TEST(NodeTest, DoubleSpendRejectedAtSubmit) {
  Network net(12);
  core::ProgressiveSelector selector;
  chain::TokenId token = net.alice.SpendableTokens()[0];
  auto tx1 = net.alice.BuildSpend(token, {2.0, 3}, selector,
                                  {net.bob.NewOutputKey()}, "first");
  ASSERT_TRUE(tx1.ok());
  auto tx2 = net.alice.BuildSpend(token, {2.0, 3}, selector,
                                  {net.bob.NewOutputKey()}, "second");
  ASSERT_TRUE(tx2.ok());
  // Both have the same key image (same token).
  ASSERT_TRUE(net.node
                  .SubmitTransaction(std::move(tx1).value(),
                                     {net.bob.NewOutputKey()})
                  .ok());
  auto verdict = net.node.SubmitTransaction(std::move(tx2).value(),
                                            {net.bob.NewOutputKey()});
  EXPECT_TRUE(verdict.IsVerificationFailed());
}

TEST(NodeTest, DoubleSpendRejectedAcrossBlocks) {
  Network net(12);
  core::ProgressiveSelector selector;
  chain::TokenId token = net.alice.SpendableTokens()[0];
  auto tx1 = net.alice.BuildSpend(token, {2.0, 3}, selector,
                                  {net.bob.NewOutputKey()}, "first");
  ASSERT_TRUE(tx1.ok());
  auto tx2 = net.alice.BuildSpend(token, {2.0, 3}, selector,
                                  {net.bob.NewOutputKey()}, "second");
  ASSERT_TRUE(tx2.ok());
  ASSERT_TRUE(net.node
                  .SubmitTransaction(std::move(tx1).value(),
                                     {net.bob.NewOutputKey()})
                  .ok());
  net.node.MineBlock();
  auto verdict = net.node.SubmitTransaction(std::move(tx2).value(),
                                            {net.bob.NewOutputKey()});
  EXPECT_TRUE(verdict.IsVerificationFailed());
}

TEST(NodeTest, TamperedSignatureRejected) {
  Network net(12);
  core::ProgressiveSelector selector;
  chain::TokenId token = net.alice.SpendableTokens()[0];
  auto tx = net.alice.BuildSpend(token, {2.0, 3}, selector,
                                 {net.bob.NewOutputKey()}, "pay");
  ASSERT_TRUE(tx.ok());
  SignedTransaction bad = std::move(tx).value();
  bad.memo = "pay MORE";  // breaks the signing-message binding
  auto verdict =
      net.node.SubmitTransaction(std::move(bad), {net.bob.NewOutputKey()});
  EXPECT_TRUE(verdict.IsVerificationFailed());
}

TEST(NodeTest, ForeignTokenCannotBeSpent) {
  Network net(12);
  core::ProgressiveSelector selector;
  // Bob tries to spend alice's token.
  chain::TokenId alices = net.alice.SpendableTokens()[0];
  auto attempt = net.bob.BuildSpend(alices, {2.0, 3}, selector,
                                    {net.bob.NewOutputKey()}, "steal");
  EXPECT_TRUE(attempt.status().IsNotFound());
}

TEST(NodeTest, VerifierEnforcesDeclaredDiversity) {
  Network net(12);
  core::ProgressiveSelector selector;
  chain::TokenId token = net.alice.SpendableTokens()[0];
  auto tx = net.alice.BuildSpend(token, {2.0, 3}, selector,
                                 {net.bob.NewOutputKey()}, "pay");
  ASSERT_TRUE(tx.ok());
  // Inflate the declared requirement beyond what the ring satisfies: the
  // node must reject even though the LSAG itself still verifies.
  SignedTransaction bad = std::move(tx).value();
  bad.inputs[0].requirement = {0.0001, 50};
  auto verdict =
      net.node.SubmitTransaction(std::move(bad), {net.bob.NewOutputKey()});
  EXPECT_TRUE(verdict.IsVerificationFailed());
}

TEST(NodeTest, ConfigurationViolationRejected) {
  Network net(12);
  core::ProgressiveSelector selector;
  // First spend creates an RS on the ledger.
  chain::TokenId t1 = net.alice.SpendableTokens()[0];
  ASSERT_TRUE(net.alice
                  .Spend(&net.node, t1, {2.0, 3}, selector,
                         {net.bob.NewOutputKey()}, "a")
                  .ok());
  net.node.MineBlock();
  const auto& first_rs = net.node.ledger().view(0);

  // Hand-craft a second transaction whose ring partially overlaps the
  // existing RS (takes some but not all of its members plus extras).
  chain::TokenId t2 = net.bob.SpendableTokens()[0];
  auto tx = net.bob.BuildSpend(t2, {2.0, 3}, selector,
                               {net.alice.NewOutputKey()}, "b");
  ASSERT_TRUE(tx.ok());
  SignedTransaction bad = std::move(tx).value();
  // Force a partial overlap: {one member of the existing RS} ∪ {t2}.
  // Either the configuration check or the (now unbound) LSAG rejects it;
  // both are VerificationFailed.
  std::vector<chain::TokenId> overlap_ring = {first_rs.members[0], t2};
  std::sort(overlap_ring.begin(), overlap_ring.end());
  bad.inputs[0].ring = overlap_ring;
  auto verdict =
      net.node.SubmitTransaction(std::move(bad), {net.alice.NewOutputKey()});
  EXPECT_TRUE(verdict.IsVerificationFailed());
}

TEST(NodeTest, MempoolRejectsDuplicateKeyImages) {
  Network net(12);
  core::ProgressiveSelector selector;
  chain::TokenId token = net.alice.SpendableTokens()[0];
  auto tx = net.alice.BuildSpend(token, {2.0, 3}, selector,
                                 {net.bob.NewOutputKey()}, "pay");
  ASSERT_TRUE(tx.ok());
  SignedTransaction duplicate = tx.value();
  ASSERT_TRUE(net.node
                  .SubmitTransaction(std::move(tx).value(),
                                     {net.bob.NewOutputKey()})
                  .ok());
  auto verdict = net.node.SubmitTransaction(std::move(duplicate),
                                            {net.bob.NewOutputKey()});
  EXPECT_TRUE(verdict.IsVerificationFailed());
}

TEST(NodeTest, OutputKeyCountMustMatch) {
  Network net(12);
  core::ProgressiveSelector selector;
  chain::TokenId token = net.alice.SpendableTokens()[0];
  auto tx = net.alice.BuildSpend(token, {2.0, 3}, selector,
                                 {net.bob.NewOutputKey()}, "pay");
  ASSERT_TRUE(tx.ok());
  auto verdict = net.node.SubmitTransaction(
      std::move(tx).value(),
      {net.bob.NewOutputKey(), net.bob.NewOutputKey()});
  EXPECT_TRUE(verdict.IsInvalidArgument());
}

TEST(NodeTest, MultiInputTransactionVerifiesAndMines) {
  Network net(14);
  core::ProgressiveSelector selector;
  auto spendable = net.alice.SpendableTokens();
  ASSERT_GE(spendable.size(), 2u);
  std::vector<chain::TokenId> inputs = {spendable[0], spendable[1]};
  auto tx = net.alice.BuildSpendMulti(inputs, {2.0, 3}, selector,
                                      {net.bob.NewOutputKey()}, "multi");
  ASSERT_TRUE(tx.ok());
  EXPECT_EQ(tx->inputs.size(), 2u);
  // Sibling rings must respect the first configuration between each
  // other: superset or disjoint.
  const auto& a = tx->inputs[0].ring;
  const auto& b = tx->inputs[1].ring;
  std::vector<chain::TokenId> intersection;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(intersection));
  bool disjoint = intersection.empty();
  bool nested = std::includes(a.begin(), a.end(), b.begin(), b.end()) ||
                std::includes(b.begin(), b.end(), a.begin(), a.end());
  EXPECT_TRUE(disjoint || nested);

  ASSERT_TRUE(net.node
                  .SubmitTransaction(std::move(tx).value(),
                                     {net.bob.NewOutputKey()})
                  .ok());
  auto mined = net.node.MineBlock();
  EXPECT_EQ(mined.transactions, 1u);
  EXPECT_EQ(net.node.ledger().size(), 2u);  // one RS per input
}

TEST(NodeTest, MultiInputRejectsDuplicatesAndUnknowns) {
  Network net(12);
  core::ProgressiveSelector selector;
  auto spendable = net.alice.SpendableTokens();
  auto dup = net.alice.BuildSpendMulti({spendable[0], spendable[0]},
                                       {2.0, 3}, selector,
                                       {net.bob.NewOutputKey()}, "dup");
  EXPECT_TRUE(dup.status().IsInvalidArgument());
  auto none = net.alice.BuildSpendMulti({}, {2.0, 3}, selector,
                                        {net.bob.NewOutputKey()}, "none");
  EXPECT_TRUE(none.status().IsInvalidArgument());
}

TEST(NodeTest, ManySpendsRemainUnlinkable) {
  Network net(16, 64);
  core::ProgressiveSelector selector;
  // Alternate spenders over several blocks.
  for (int round = 0; round < 3; ++round) {
    Wallet& spender = (round % 2 == 0) ? net.alice : net.bob;
    Wallet& receiver = (round % 2 == 0) ? net.bob : net.alice;
    auto spendable = spender.SpendableTokens();
    ASSERT_FALSE(spendable.empty());
    ASSERT_TRUE(spender
                    .Spend(&net.node, spendable[round], {2.0, 3}, selector,
                           {receiver.NewOutputKey()}, "round")
                    .ok());
    net.node.MineBlock();
  }
  EXPECT_EQ(net.node.ledger().size(), 3u);
  // The node itself cannot name any spend: ground truth is blind.
  for (size_t i = 0; i < net.node.ledger().size(); ++i) {
    EXPECT_EQ(net.node.ledger().GroundTruthSpent(i), chain::kInvalidToken);
  }
}

}  // namespace
}  // namespace tokenmagic::node
