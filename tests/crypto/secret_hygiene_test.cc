// Secret-material hygiene: key zeroization on destruction and the
// constant-time scalar-multiplication path used by LSAG signing.

#include <gtest/gtest.h>

#include <cstring>
#include <new>

#include "common/rng.h"
#include "crypto/field.h"
#include "crypto/keys.h"
#include "crypto/lsag.h"
#include "crypto/memzero.h"
#include "crypto/secp256k1.h"

namespace tokenmagic::crypto {
namespace {

TEST(SecureWipeTest, ZeroizesEveryByte) {
  unsigned char buf[64];
  std::memset(buf, 0xAB, sizeof(buf));
  SecureWipe(buf, sizeof(buf));
  for (unsigned char b : buf) EXPECT_EQ(b, 0);
}

TEST(SecureWipeTest, ZeroLengthIsANoop) {
  unsigned char sentinel = 0x5A;
  SecureWipe(&sentinel, 0);
  EXPECT_EQ(sentinel, 0x5A);
}

// Destroys a Keypair in caller-owned storage and inspects the raw bytes
// afterwards: the secret scalar must be gone. Reading the storage after the
// destructor is fine here because the buffer itself stays alive and we only
// ever look at it as raw bytes.
TEST(KeypairHygieneTest, SecretIsZeroizedOnDestruction) {
  alignas(Keypair) unsigned char storage[sizeof(Keypair)];
  common::Rng rng(2024);
  Keypair* kp = new (storage) Keypair(Keypair::Generate(&rng));
  ASSERT_FALSE(kp->secret.IsZero());

  // Locate the secret's bytes inside the object before destroying it.
  const size_t offset =
      reinterpret_cast<unsigned char*>(&kp->secret) - storage;
  ASSERT_LE(offset + sizeof(U256), sizeof(Keypair));

  kp->~Keypair();
  for (size_t i = 0; i < sizeof(kp->secret.limbs); ++i) {
    EXPECT_EQ(storage[offset + i], 0) << "secret byte " << i << " survived";
  }
}

TEST(KeypairHygieneTest, CopiesWipeIndependently) {
  common::Rng rng(7);
  Keypair original = Keypair::Generate(&rng);
  alignas(Keypair) unsigned char storage[sizeof(Keypair)];
  Keypair* copy = new (storage) Keypair(original);
  ASSERT_EQ(copy->secret, original.secret);
  copy->~Keypair();
  // The original must be untouched by the copy's wipe.
  EXPECT_FALSE(original.secret.IsZero());
}

// The ladder must agree with the audited variable-time path on every scalar
// shape that exercises a distinct code path: zero, one, small, high-bit-set,
// and random full-width scalars.
TEST(ConstantTimeMulTest, MatchesVariableTimePath) {
  common::Rng rng(31337);
  const Point& g = Secp256k1::Generator();
  Point p = Secp256k1::MulBase(HashToScalar("ct-test-point"));

  std::vector<U256> scalars = {
      U256::Zero(), U256::One(), U256(2), U256(3), U256(255),
      ScalarSub(U256::Zero(), U256::One()),  // n - 1
  };
  for (int i = 0; i < 8; ++i) {
    U256 k;
    for (auto& limb : k.limbs) limb = rng.Next();
    scalars.push_back(ScalarReduce(k));
  }

  for (const U256& k : scalars) {
    EXPECT_EQ(Secp256k1::MulCT(k, p), Secp256k1::Mul(k, p))
        << "k = " << k.ToHex();
    EXPECT_EQ(Secp256k1::MulBaseCT(k), Secp256k1::MulBase(k))
        << "k = " << k.ToHex();
  }
  EXPECT_EQ(Secp256k1::MulCT(U256::One(), g), g);
  EXPECT_TRUE(Secp256k1::MulCT(U256::Zero(), p).infinity);
}

TEST(ConstantTimeMulTest, IdentityInputStaysIdentity) {
  U256 k(12345);
  EXPECT_TRUE(Secp256k1::MulCT(k, Point::Infinity()).infinity);
}

// Signing must produce identical signatures through the constant-time path
// given identical randomness: determinism guards against the ladder
// silently diverging from the old Mul-based signer.
TEST(ConstantTimeMulTest, SigningIsDeterministicPerSeed) {
  common::Rng key_rng(5);
  std::vector<Keypair> keys;
  std::vector<Point> ring;
  for (int i = 0; i < 4; ++i) {
    keys.push_back(Keypair::Generate(&key_rng));
    ring.push_back(keys.back().pub);
  }
  common::Rng rng_a(77);
  common::Rng rng_b(77);
  auto sig_a = Lsag::Sign(ring, 1, keys[1], "determinism", &rng_a);
  auto sig_b = Lsag::Sign(ring, 1, keys[1], "determinism", &rng_b);
  ASSERT_TRUE(sig_a.ok());
  ASSERT_TRUE(sig_b.ok());
  EXPECT_EQ(sig_a->c0, sig_b->c0);
  EXPECT_EQ(sig_a->key_image, sig_b->key_image);
  EXPECT_EQ(sig_a->responses.size(), sig_b->responses.size());
  for (size_t i = 0; i < sig_a->responses.size(); ++i) {
    EXPECT_EQ(sig_a->responses[i], sig_b->responses[i]);
  }
}

}  // namespace
}  // namespace tokenmagic::crypto
