// LSAG negative-path coverage: tampered signatures, key images that do not
// belong to the ring, and double-spend (repeated key image) edge cases.

#include <gtest/gtest.h>

#include <algorithm>

#include "crypto/field.h"
#include "crypto/lsag.h"
#include "crypto/secp256k1.h"

namespace tokenmagic::crypto {
namespace {

struct RingFixture {
  std::vector<Keypair> keys;
  std::vector<Point> ring;

  explicit RingFixture(size_t n, uint64_t seed = 4242) {
    common::Rng rng(seed);
    for (size_t i = 0; i < n; ++i) {
      keys.push_back(Keypair::Generate(&rng));
      ring.push_back(keys.back().pub);
    }
  }
};

LsagSignature MustSign(const RingFixture& fx, size_t signer,
                       std::string_view msg, uint64_t seed) {
  common::Rng rng(seed);
  auto sig = Lsag::Sign(fx.ring, signer, fx.keys[signer], msg, &rng);
  EXPECT_TRUE(sig.ok());
  return *sig;
}

// --- tampered-signature rejection ---------------------------------------

TEST(LsagNegativeTest, EveryTamperedResponseIsRejected) {
  RingFixture fx(5);
  LsagSignature sig = MustSign(fx, 2, "msg", 1);
  for (size_t i = 0; i < sig.responses.size(); ++i) {
    LsagSignature bad = sig;
    bad.responses[i] = ScalarAdd(bad.responses[i], U256::One());
    EXPECT_FALSE(Lsag::Verify(bad, "msg")) << "response " << i;
  }
}

TEST(LsagNegativeTest, ReplacedRingMemberIsRejected) {
  RingFixture fx(4);
  RingFixture other(4, /*seed=*/777);
  LsagSignature sig = MustSign(fx, 0, "msg", 2);
  for (size_t i = 0; i < sig.ring.size(); ++i) {
    LsagSignature bad = sig;
    bad.ring[i] = other.ring[i];
    EXPECT_FALSE(Lsag::Verify(bad, "msg")) << "ring slot " << i;
  }
}

TEST(LsagNegativeTest, ReorderedRingIsRejected) {
  RingFixture fx(4);
  LsagSignature sig = MustSign(fx, 1, "msg", 3);
  LsagSignature bad = sig;
  std::swap(bad.ring[0], bad.ring[2]);
  EXPECT_FALSE(Lsag::Verify(bad, "msg"));
}

TEST(LsagNegativeTest, TruncatedResponsesAreRejected) {
  RingFixture fx(4);
  LsagSignature sig = MustSign(fx, 1, "msg", 4);
  LsagSignature bad = sig;
  bad.responses.pop_back();
  EXPECT_FALSE(Lsag::Verify(bad, "msg"));
}

TEST(LsagNegativeTest, OutOfRangeResponseScalarIsRejected) {
  RingFixture fx(3);
  LsagSignature sig = MustSign(fx, 0, "msg", 5);
  LsagSignature bad = sig;
  // Any s_i >= n is malformed even when it is congruent mod n to a valid
  // response; accepting it would make signatures malleable. n itself is the
  // smallest out-of-range scalar (congruent to the often-valid 0).
  bad.responses[1] = GroupOrder();
  EXPECT_FALSE(Lsag::Verify(bad, "msg"));
}

// --- wrong-ring-member key images ---------------------------------------

TEST(LsagNegativeTest, KeyImageOfAnotherRingMemberIsRejected) {
  RingFixture fx(4);
  LsagSignature sig = MustSign(fx, 0, "msg", 6);
  // Forge the key image a verifier would accept for ring member 1: the
  // challenge chain was built for member 0's image, so this must not close.
  LsagSignature bad = sig;
  Point hp1 = Secp256k1::HashToPoint(fx.ring[1].Encode().data(), 33,
                                     "tokenmagic/lsag-hp");
  bad.key_image = Secp256k1::MulCT(fx.keys[1].secret, hp1);
  EXPECT_FALSE(Lsag::Verify(bad, "msg"));
}

TEST(LsagNegativeTest, KeyImageOnWrongBasePointIsRejected) {
  RingFixture fx(3);
  LsagSignature sig = MustSign(fx, 0, "msg", 7);
  LsagSignature bad = sig;
  // x*G instead of x*Hp(P): a classic implementation bug that would let an
  // attacker link spends to public keys. Must fail verification.
  bad.key_image = Secp256k1::MulBaseCT(fx.keys[0].secret);
  EXPECT_FALSE(Lsag::Verify(bad, "msg"));
}

TEST(LsagNegativeTest, IdentityKeyImageIsRejected) {
  RingFixture fx(3);
  LsagSignature sig = MustSign(fx, 0, "msg", 8);
  LsagSignature bad = sig;
  bad.key_image = Point::Infinity();
  EXPECT_FALSE(Lsag::Verify(bad, "msg"));
}

TEST(LsagNegativeTest, OffCurveKeyImageIsRejected) {
  RingFixture fx(3);
  LsagSignature sig = MustSign(fx, 0, "msg", 9);
  LsagSignature bad = sig;
  bad.key_image.infinity = false;
  bad.key_image.x = U256(5);
  bad.key_image.y = U256(7);  // (5, 7) is not on y^2 = x^3 + 7 mod p
  EXPECT_FALSE(Lsag::Verify(bad, "msg"));
}

// --- double-spend (repeated key image) edge cases ------------------------

TEST(LsagNegativeTest, SameKeyDifferentRingsStillLinked) {
  // The signer hides in two disjoint decoy sets; the key image must still
  // collide — that is the whole double-spend defence.
  common::Rng rng(10);
  Keypair spender = Keypair::Generate(&rng);

  RingFixture decoys_a(3, 11);
  RingFixture decoys_b(3, 12);
  std::vector<Point> ring_a = decoys_a.ring;
  std::vector<Point> ring_b = decoys_b.ring;
  ring_a.push_back(spender.pub);
  ring_b.insert(ring_b.begin(), spender.pub);

  common::Rng sig_rng(13);
  auto sig_a = Lsag::Sign(ring_a, ring_a.size() - 1, spender, "tx-1",
                          &sig_rng);
  auto sig_b = Lsag::Sign(ring_b, 0, spender, "tx-2", &sig_rng);
  ASSERT_TRUE(sig_a.ok());
  ASSERT_TRUE(sig_b.ok());
  EXPECT_TRUE(Lsag::Verify(*sig_a, "tx-1"));
  EXPECT_TRUE(Lsag::Verify(*sig_b, "tx-2"));
  EXPECT_TRUE(Lsag::Linked(*sig_a, *sig_b));

  KeyImageRegistry registry;
  ASSERT_TRUE(registry.Register(sig_a->key_image).ok());
  common::Status second = registry.Register(sig_b->key_image);
  EXPECT_FALSE(second.ok());
  EXPECT_EQ(second.code(), common::StatusCode::kAlreadyExists);
}

TEST(LsagNegativeTest, RegistryRejectsRepeatedImageIdempotently) {
  RingFixture fx(3);
  LsagSignature sig = MustSign(fx, 1, "msg", 14);
  KeyImageRegistry registry;
  ASSERT_TRUE(registry.Register(sig.key_image).ok());
  // Every replay attempt must keep failing and must not disturb the size.
  for (int attempt = 0; attempt < 3; ++attempt) {
    EXPECT_FALSE(registry.Register(sig.key_image).ok());
    EXPECT_EQ(registry.size(), 1u);
  }
  EXPECT_TRUE(registry.Contains(sig.key_image));
}

TEST(LsagNegativeTest, DistinctSignersNeverCollideInRegistry) {
  RingFixture fx(6);
  KeyImageRegistry registry;
  for (size_t j = 0; j < fx.ring.size(); ++j) {
    LsagSignature sig = MustSign(fx, j, "msg", 20 + j);
    EXPECT_TRUE(registry.Register(sig.key_image).ok()) << "signer " << j;
  }
  EXPECT_EQ(registry.size(), fx.ring.size());
}

}  // namespace
}  // namespace tokenmagic::crypto
