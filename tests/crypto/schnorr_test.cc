#include "crypto/schnorr.h"

#include <gtest/gtest.h>

#include "crypto/field.h"

namespace tokenmagic::crypto {
namespace {

TEST(SchnorrTest, SignVerifyRoundTrip) {
  common::Rng rng(1);
  Keypair key = Keypair::Generate(&rng);
  SchnorrSignature sig = Schnorr::Sign(key, "hello world", &rng);
  EXPECT_TRUE(Schnorr::Verify(key.pub, "hello world", sig));
}

TEST(SchnorrTest, WrongMessageRejected) {
  common::Rng rng(2);
  Keypair key = Keypair::Generate(&rng);
  SchnorrSignature sig = Schnorr::Sign(key, "message A", &rng);
  EXPECT_FALSE(Schnorr::Verify(key.pub, "message B", sig));
}

TEST(SchnorrTest, WrongKeyRejected) {
  common::Rng rng(3);
  Keypair signer = Keypair::Generate(&rng);
  Keypair other = Keypair::Generate(&rng);
  SchnorrSignature sig = Schnorr::Sign(signer, "payload", &rng);
  EXPECT_FALSE(Schnorr::Verify(other.pub, "payload", sig));
}

TEST(SchnorrTest, TamperedChallengeRejected) {
  common::Rng rng(4);
  Keypair key = Keypair::Generate(&rng);
  SchnorrSignature sig = Schnorr::Sign(key, "payload", &rng);
  sig.challenge = ScalarAdd(sig.challenge, U256::One());
  EXPECT_FALSE(Schnorr::Verify(key.pub, "payload", sig));
}

TEST(SchnorrTest, TamperedResponseRejected) {
  common::Rng rng(5);
  Keypair key = Keypair::Generate(&rng);
  SchnorrSignature sig = Schnorr::Sign(key, "payload", &rng);
  sig.response = ScalarAdd(sig.response, U256::One());
  EXPECT_FALSE(Schnorr::Verify(key.pub, "payload", sig));
}

TEST(SchnorrTest, OutOfRangeScalarsRejected) {
  common::Rng rng(6);
  Keypair key = Keypair::Generate(&rng);
  SchnorrSignature sig = Schnorr::Sign(key, "payload", &rng);
  SchnorrSignature bad = sig;
  bad.challenge = GroupOrder();
  EXPECT_FALSE(Schnorr::Verify(key.pub, "payload", bad));
  bad = sig;
  bad.response = GroupOrder();
  EXPECT_FALSE(Schnorr::Verify(key.pub, "payload", bad));
  bad = sig;
  bad.challenge = U256::Zero();
  EXPECT_FALSE(Schnorr::Verify(key.pub, "payload", bad));
}

TEST(SchnorrTest, InfinityPublicKeyRejected) {
  common::Rng rng(7);
  Keypair key = Keypair::Generate(&rng);
  SchnorrSignature sig = Schnorr::Sign(key, "payload", &rng);
  EXPECT_FALSE(Schnorr::Verify(Point::Infinity(), "payload", sig));
}

TEST(SchnorrTest, SignaturesAreRandomizedButBothVerify) {
  common::Rng rng(8);
  Keypair key = Keypair::Generate(&rng);
  SchnorrSignature s1 = Schnorr::Sign(key, "same message", &rng);
  SchnorrSignature s2 = Schnorr::Sign(key, "same message", &rng);
  EXPECT_FALSE(s1.challenge == s2.challenge && s1.response == s2.response);
  EXPECT_TRUE(Schnorr::Verify(key.pub, "same message", s1));
  EXPECT_TRUE(Schnorr::Verify(key.pub, "same message", s2));
}

TEST(KeypairTest, GenerateProducesValidKeys) {
  common::Rng rng(9);
  for (int i = 0; i < 10; ++i) {
    Keypair key = Keypair::Generate(&rng);
    EXPECT_TRUE(IsValidScalar(key.secret));
    EXPECT_TRUE(Secp256k1::IsOnCurve(key.pub));
    EXPECT_EQ(key.pub, Secp256k1::MulBase(key.secret));
  }
}

TEST(KeypairTest, FromSeedIsDeterministic) {
  Keypair a = Keypair::FromSeed("alice");
  Keypair b = Keypair::FromSeed("alice");
  Keypair c = Keypair::FromSeed("bob");
  EXPECT_EQ(a.secret, b.secret);
  EXPECT_EQ(a.pub, b.pub);
  EXPECT_NE(a.secret, c.secret);
}

TEST(HashToScalarTest, ValidAndDeterministic) {
  U256 s1 = HashToScalar("input");
  U256 s2 = HashToScalar("input");
  U256 s3 = HashToScalar("other");
  EXPECT_EQ(s1, s2);
  EXPECT_NE(s1, s3);
  EXPECT_TRUE(IsValidScalar(s1));
  EXPECT_NE(HashToScalar("input", "tag-a"), HashToScalar("input", "tag-b"));
}

}  // namespace
}  // namespace tokenmagic::crypto
