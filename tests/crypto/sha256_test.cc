#include "crypto/sha256.h"

#include <string>

#include <gtest/gtest.h>

#include "common/strings.h"

namespace tokenmagic::crypto {
namespace {

// FIPS 180-4 / NIST CAVP standard test vectors.

TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(Sha256Hex(""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b"
            "855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(Sha256Hex("abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f2001"
            "5ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(Sha256Hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnop"
                      "nopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db0"
            "6c1");
}

TEST(Sha256Test, OneMillionA) {
  Sha256 hasher;
  std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) hasher.Update(chunk);
  auto digest = hasher.Finalize();
  EXPECT_EQ(common::HexEncode(digest.data(), digest.size()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112"
            "cd0");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  std::string message =
      "The quick brown fox jumps over the lazy dog and keeps running";
  for (size_t split = 0; split <= message.size(); split += 7) {
    Sha256 hasher;
    hasher.Update(message.substr(0, split));
    hasher.Update(message.substr(split));
    auto incremental = hasher.Finalize();
    EXPECT_EQ(incremental, Sha256::Hash(message));
  }
}

TEST(Sha256Test, BoundaryLengthsAroundBlockSize) {
  // Lengths 55, 56, 57, 63, 64, 65 exercise every padding branch; verify
  // incremental == one-shot and that each digest is distinct.
  std::vector<Sha256::Digest> digests;
  for (size_t len : {55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u}) {
    std::string msg(len, 'x');
    Sha256 byte_at_a_time;
    for (char c : msg) {
      byte_at_a_time.Update(std::string_view(&c, 1));
    }
    auto digest = byte_at_a_time.Finalize();
    EXPECT_EQ(digest, Sha256::Hash(msg)) << "len=" << len;
    digests.push_back(digest);
  }
  for (size_t i = 0; i < digests.size(); ++i) {
    for (size_t j = i + 1; j < digests.size(); ++j) {
      EXPECT_NE(digests[i], digests[j]);
    }
  }
}

TEST(Sha256Test, DifferentInputsDifferentDigests) {
  EXPECT_NE(Sha256::Hash("a"), Sha256::Hash("b"));
  EXPECT_NE(Sha256::Hash("a"), Sha256::Hash("aa"));
  EXPECT_NE(Sha256::Hash(""), Sha256::Hash(std::string(1, '\0')));
}

TEST(Sha256Test, HashVectorOverloadMatches) {
  std::vector<uint8_t> bytes = {'a', 'b', 'c'};
  Sha256 hasher;
  hasher.Update(bytes);
  EXPECT_EQ(hasher.Finalize(), Sha256::Hash("abc"));
}

}  // namespace
}  // namespace tokenmagic::crypto
