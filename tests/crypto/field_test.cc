#include "crypto/field.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace tokenmagic::crypto {
namespace {

U256 RandomFieldElement(common::Rng* rng) {
  U256 v(rng->Next(), rng->Next(), rng->Next(), rng->Next());
  return U256::Mod(v, FieldPrime());
}

TEST(FieldTest, PrimeAndOrderAreTheStandardConstants) {
  EXPECT_EQ(FieldPrime().ToHex(),
            "fffffffffffffffffffffffffffffffffffffffffffffffffffffffefff"
            "ffc2f");
  EXPECT_EQ(GroupOrder().ToHex(),
            "fffffffffffffffffffffffffffffffebaaedce6af48a03bbfd25e8cd03"
            "64141");
}

TEST(FieldTest, ReduceMatchesGenericMod) {
  common::Rng rng(101);
  for (int i = 0; i < 300; ++i) {
    U256 a(rng.Next(), rng.Next(), rng.Next(), rng.Next());
    U256 b(rng.Next(), rng.Next(), rng.Next(), rng.Next());
    U512 product = U256::Mul(a, b);
    EXPECT_EQ(FieldReduce(product), U512::Mod(product, FieldPrime()));
  }
}

TEST(FieldTest, ReduceHandlesExtremes) {
  // 0, p-1, p, p+1, and the all-ones 512-bit value.
  U512 zero;
  EXPECT_TRUE(FieldReduce(zero).IsZero());

  U512 extreme;
  for (auto& limb : extreme.limbs) limb = ~0ull;
  EXPECT_EQ(FieldReduce(extreme), U512::Mod(extreme, FieldPrime()));

  U256 p_minus_1;
  U256::Sub(FieldPrime(), U256::One(), &p_minus_1);
  U512 w;
  for (int i = 0; i < 4; ++i) w.limbs[i] = p_minus_1.limbs[i];
  EXPECT_EQ(FieldReduce(w), p_minus_1);
  for (int i = 0; i < 4; ++i) w.limbs[i] = FieldPrime().limbs[i];
  EXPECT_TRUE(FieldReduce(w).IsZero());
}

TEST(FieldTest, AddSubRoundTrip) {
  common::Rng rng(103);
  for (int i = 0; i < 100; ++i) {
    U256 a = RandomFieldElement(&rng);
    U256 b = RandomFieldElement(&rng);
    EXPECT_EQ(FieldSub(FieldAdd(a, b), b), a);
  }
}

TEST(FieldTest, NegIsAdditiveInverse) {
  common::Rng rng(105);
  for (int i = 0; i < 100; ++i) {
    U256 a = RandomFieldElement(&rng);
    EXPECT_TRUE(FieldAdd(a, FieldNeg(a)).IsZero());
  }
  EXPECT_TRUE(FieldNeg(U256::Zero()).IsZero());
}

TEST(FieldTest, MulCommutesAndDistributes) {
  common::Rng rng(107);
  for (int i = 0; i < 50; ++i) {
    U256 a = RandomFieldElement(&rng);
    U256 b = RandomFieldElement(&rng);
    U256 c = RandomFieldElement(&rng);
    EXPECT_EQ(FieldMul(a, b), FieldMul(b, a));
    EXPECT_EQ(FieldMul(a, FieldAdd(b, c)),
              FieldAdd(FieldMul(a, b), FieldMul(a, c)));
  }
}

TEST(FieldTest, SqrMatchesMul) {
  common::Rng rng(109);
  for (int i = 0; i < 50; ++i) {
    U256 a = RandomFieldElement(&rng);
    EXPECT_EQ(FieldSqr(a), FieldMul(a, a));
  }
}

TEST(FieldTest, InvIsMultiplicativeInverse) {
  common::Rng rng(111);
  for (int i = 0; i < 20; ++i) {
    U256 a = RandomFieldElement(&rng);
    if (a.IsZero()) continue;
    EXPECT_EQ(FieldMul(a, FieldInv(a)), U256::One());
  }
}

TEST(FieldTest, PowMatchesRepeatedMul) {
  U256 a(12345);
  U256 expected = U256::One();
  for (int e = 0; e < 20; ++e) {
    EXPECT_EQ(FieldPow(a, U256(static_cast<uint64_t>(e))), expected);
    expected = FieldMul(expected, a);
  }
}

TEST(FieldTest, SqrtOfSquareRecoversRoot) {
  common::Rng rng(113);
  for (int i = 0; i < 20; ++i) {
    U256 a = RandomFieldElement(&rng);
    U256 square = FieldSqr(a);
    U256 root;
    ASSERT_TRUE(FieldSqrt(square, &root));
    // Either a or -a.
    EXPECT_TRUE(root == a || root == FieldNeg(a));
  }
}

TEST(FieldTest, SqrtRejectsNonResidues) {
  // Exactly half the non-zero elements are residues; find a non-residue.
  common::Rng rng(115);
  int rejected = 0;
  for (int i = 0; i < 40; ++i) {
    U256 a = RandomFieldElement(&rng);
    U256 root;
    if (!FieldSqrt(a, &root)) ++rejected;
  }
  EXPECT_GT(rejected, 5);  // ~20 expected
}

TEST(ScalarTest, ScalarFieldBasics) {
  common::Rng rng(117);
  for (int i = 0; i < 50; ++i) {
    U256 a = ScalarReduce(U256(rng.Next(), rng.Next(), rng.Next(),
                               rng.Next()));
    U256 b = ScalarReduce(U256(rng.Next(), rng.Next(), rng.Next(),
                               rng.Next()));
    EXPECT_EQ(ScalarSub(ScalarAdd(a, b), b), a);
    if (!a.IsZero()) {
      EXPECT_EQ(ScalarMul(a, ScalarInv(a)), U256::One());
    }
  }
}

TEST(ScalarTest, IsValidScalarBounds) {
  EXPECT_FALSE(IsValidScalar(U256::Zero()));
  EXPECT_TRUE(IsValidScalar(U256::One()));
  U256 n_minus_1;
  U256::Sub(GroupOrder(), U256::One(), &n_minus_1);
  EXPECT_TRUE(IsValidScalar(n_minus_1));
  EXPECT_FALSE(IsValidScalar(GroupOrder()));
}

}  // namespace
}  // namespace tokenmagic::crypto
