#include "crypto/stealth.h"

#include <gtest/gtest.h>

#include "crypto/field.h"
#include "crypto/lsag.h"

namespace tokenmagic::crypto {
namespace {

TEST(StealthTest, RecipientDetectsOwnOutput) {
  common::Rng rng(1);
  StealthAddress bob = StealthAddress::Generate(&rng);
  StealthOutput output = Stealth::Derive(bob.public_address(), &rng);
  EXPECT_TRUE(Stealth::IsMine(bob, output));
}

TEST(StealthTest, OtherWalletsDoNotDetect) {
  common::Rng rng(2);
  StealthAddress bob = StealthAddress::Generate(&rng);
  StealthAddress eve = StealthAddress::Generate(&rng);
  StealthOutput output = Stealth::Derive(bob.public_address(), &rng);
  EXPECT_FALSE(Stealth::IsMine(eve, output));
  EXPECT_FALSE(Stealth::RecoverKey(eve, output).has_value());
}

TEST(StealthTest, RecoveredKeyMatchesOneTimeKey) {
  common::Rng rng(3);
  StealthAddress bob = StealthAddress::Generate(&rng);
  StealthOutput output = Stealth::Derive(bob.public_address(), &rng);
  auto key = Stealth::RecoverKey(bob, output);
  ASSERT_TRUE(key.has_value());
  EXPECT_EQ(key->pub, output.one_time_key);
  EXPECT_EQ(Secp256k1::MulBase(key->secret), output.one_time_key);
}

TEST(StealthTest, RecoveredKeyCanSignLsag) {
  common::Rng rng(4);
  StealthAddress bob = StealthAddress::Generate(&rng);
  StealthOutput mine = Stealth::Derive(bob.public_address(), &rng);
  auto key = Stealth::RecoverKey(bob, mine);
  ASSERT_TRUE(key.has_value());

  // Ring of decoy one-time keys + bob's.
  std::vector<Point> ring;
  for (int i = 0; i < 3; ++i) {
    StealthAddress decoy = StealthAddress::Generate(&rng);
    ring.push_back(
        Stealth::Derive(decoy.public_address(), &rng).one_time_key);
  }
  ring.push_back(mine.one_time_key);
  auto sig = Lsag::Sign(ring, 3, *key, "stealth spend", &rng);
  ASSERT_TRUE(sig.ok());
  EXPECT_TRUE(Lsag::Verify(*sig, "stealth spend"));
}

TEST(StealthTest, RepeatedPaymentsAreUnlinkable) {
  common::Rng rng(5);
  StealthAddress bob = StealthAddress::Generate(&rng);
  StealthOutput p1 = Stealth::Derive(bob.public_address(), &rng);
  StealthOutput p2 = Stealth::Derive(bob.public_address(), &rng);
  // Fresh transaction keys => distinct one-time keys every time.
  EXPECT_NE(p1.one_time_key, p2.one_time_key);
  EXPECT_NE(p1.tx_pubkey, p2.tx_pubkey);
  // Both still detectable by bob.
  EXPECT_TRUE(Stealth::IsMine(bob, p1));
  EXPECT_TRUE(Stealth::IsMine(bob, p2));
}

TEST(StealthTest, TamperedTxPubkeyBreaksDetection) {
  common::Rng rng(6);
  StealthAddress bob = StealthAddress::Generate(&rng);
  StealthOutput output = Stealth::Derive(bob.public_address(), &rng);
  output.tx_pubkey = Secp256k1::Add(output.tx_pubkey,
                                    Secp256k1::Generator());
  EXPECT_FALSE(Stealth::IsMine(bob, output));
}

TEST(StealthTest, OneTimeKeysAreValidCurvePoints) {
  common::Rng rng(7);
  StealthAddress bob = StealthAddress::Generate(&rng);
  for (int i = 0; i < 8; ++i) {
    StealthOutput output = Stealth::Derive(bob.public_address(), &rng);
    EXPECT_TRUE(Secp256k1::IsOnCurve(output.one_time_key));
    EXPECT_FALSE(output.one_time_key.infinity);
  }
}

}  // namespace
}  // namespace tokenmagic::crypto
