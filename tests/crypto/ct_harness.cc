// ctgrind/TIMECOP-style dynamic constant-time verification harness.
//
// Every secret input is poisoned (CtPoison marks its bytes "undefined"
// for valgrind memcheck, or MSan under -fsanitize=memory) and the full
// signing/derivation surface is then exercised end-to-end. Any branch,
// memory index, or syscall argument derived from still-poisoned bytes is
// reported by the tool as a use of uninitialised data — the machine-level
// counterpart of what tools/analyze/tm_ct.py proves at source level. The
// audited CtDeclassify exits (published responses, rejection verdicts,
// the ladder's scalar entry) are the only places poison may escape.
//
// Run under the oracle:
//   valgrind --error-exitcode=99 ./ct_harness
// (the binary must be BUILT with <valgrind/memcheck.h> available so the
// client-request hooks compile in; otherwise the harness still runs all
// flows but the poisoning is a no-op and only functional checks remain).

#include <cstdio>

#include "common/rng.h"
#include "crypto/ct.h"
#include "crypto/keys.h"
#include "crypto/lsag.h"
#include "crypto/pedersen.h"
#include "crypto/range_proof.h"
#include "crypto/schnorr.h"
#include "crypto/secp256k1.h"
#include "crypto/stealth.h"

namespace tokenmagic::crypto {
namespace {

int failures = 0;

void Check(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "ct_harness: FAIL %s\n", what);
    ++failures;
  }
}

void SchnorrFlow(common::Rng* rng) {
  Keypair key = Keypair::Generate(rng);
  CtPoison(&key.secret, sizeof(key.secret));
  SchnorrSignature sig = Schnorr::Sign(key, "ct-harness/schnorr", rng);
  Check(Schnorr::Verify(key.pub, "ct-harness/schnorr", sig),
        "schnorr sign/verify round trip");
  Check(!Schnorr::Verify(key.pub, "ct-harness/other", sig),
        "schnorr rejects wrong message");
}

void LsagFlow(common::Rng* rng) {
  constexpr size_t kRing = 5;
  constexpr size_t kSigner = 2;
  std::vector<Keypair> members;
  std::vector<Point> ring;
  for (size_t i = 0; i < kRing; ++i) {
    members.push_back(Keypair::Generate(rng));
    CtPoison(&members.back().secret, sizeof(U256));
    ring.push_back(members.back().pub);
  }
  auto sig = Lsag::Sign(ring, kSigner, members[kSigner], "ct/one", rng);
  Check(sig.ok(), "lsag sign succeeds");
  if (!sig.ok()) return;
  Check(Lsag::Verify(*sig, "ct/one"), "lsag verify accepts");
  Check(!Lsag::Verify(*sig, "ct/two"), "lsag rejects wrong message");
  auto again = Lsag::Sign(ring, kSigner, members[kSigner], "ct/two", rng);
  Check(again.ok(), "second lsag sign succeeds");
  if (again.ok()) {
    Check(Lsag::Linked(*sig, *again),
          "same signer's key images link across messages");
  }
}

void StealthFlow(common::Rng* rng) {
  StealthAddress wallet = StealthAddress::Generate(rng);
  CtPoison(&wallet.view.secret, sizeof(U256));
  CtPoison(&wallet.spend.secret, sizeof(U256));
  StealthOutput output = Stealth::Derive(wallet.public_address(), rng);
  Check(Stealth::IsMine(wallet, output), "stealth output is recognized");

  StealthAddress other = StealthAddress::Generate(rng);
  CtPoison(&other.view.secret, sizeof(U256));
  Check(!Stealth::IsMine(other, output),
        "foreign wallet does not claim the output");

  auto recovered = Stealth::RecoverKey(wallet, output);
  Check(recovered.has_value(), "one-time key recovers");
  if (recovered.has_value()) {
    // Validate the (still-poisoned) recovered secret through the CT
    // boundary instead of branching on its raw bytes.
    Check(Secp256k1::MulBaseCT(recovered->secret) == output.one_time_key,
          "recovered secret reproduces the one-time key");
  }
}

void PedersenFlow(common::Rng* rng) {
  Commitment in_a = Pedersen::Commit(60, rng);
  Commitment in_b = Pedersen::Commit(40, rng);
  Commitment out_a = Pedersen::Commit(93, rng);
  uint64_t fee = 7;
  Check(Pedersen::VerifyOpening(in_a.point, in_a.blinding, 60),
        "commitment opening verifies");
  Check(!Pedersen::VerifyOpening(in_a.point, in_a.blinding, 61),
        "wrong value is rejected");
  auto proof = ConfidentialBalance::Prove({in_a, in_b}, {out_a}, fee, rng);
  Check(proof.ok(), "balance proof succeeds");
  if (proof.ok()) {
    Check(ConfidentialBalance::Verify({in_a.point, in_b.point},
                                      {out_a.point}, fee, *proof),
          "balance proof verifies");
  }
}

void RangeProofFlow(common::Rng* rng) {
  Commitment c = Pedersen::Commit(201, rng);
  auto proof = RangeProver::Prove(c, 8, rng);
  Check(proof.ok(), "range proof succeeds");
  if (proof.ok()) {
    Check(RangeProver::Verify(c.point, *proof), "range proof verifies");
  }
}

}  // namespace
}  // namespace tokenmagic::crypto

int main() {
  using namespace tokenmagic::crypto;
  tokenmagic::common::Rng rng(20260808);
  SchnorrFlow(&rng);
  LsagFlow(&rng);
  StealthFlow(&rng);
  PedersenFlow(&rng);
  RangeProofFlow(&rng);
  if (failures != 0) {
    std::fprintf(stderr, "ct_harness: %d failure(s)\n", failures);
    return 1;
  }
  std::printf("ct_harness: OK\n");
  return 0;
}
