#include "crypto/lsag.h"

#include <gtest/gtest.h>

#include "crypto/field.h"

namespace tokenmagic::crypto {
namespace {

struct RingFixture {
  std::vector<Keypair> keys;
  std::vector<Point> ring;

  explicit RingFixture(size_t n, uint64_t seed = 99) {
    common::Rng rng(seed);
    for (size_t i = 0; i < n; ++i) {
      keys.push_back(Keypair::Generate(&rng));
      ring.push_back(keys.back().pub);
    }
  }
};

TEST(LsagTest, SignVerifyRoundTrip) {
  RingFixture fx(4);
  common::Rng rng(1);
  auto sig = Lsag::Sign(fx.ring, 2, fx.keys[2], "spend token 42", &rng);
  ASSERT_TRUE(sig.ok());
  EXPECT_TRUE(Lsag::Verify(*sig, "spend token 42"));
}

TEST(LsagTest, EverySignerIndexVerifies) {
  RingFixture fx(5);
  common::Rng rng(2);
  for (size_t j = 0; j < fx.ring.size(); ++j) {
    auto sig = Lsag::Sign(fx.ring, j, fx.keys[j], "msg", &rng);
    ASSERT_TRUE(sig.ok()) << "signer " << j;
    EXPECT_TRUE(Lsag::Verify(*sig, "msg")) << "signer " << j;
  }
}

TEST(LsagTest, WrongMessageRejected) {
  RingFixture fx(3);
  common::Rng rng(3);
  auto sig = Lsag::Sign(fx.ring, 0, fx.keys[0], "original", &rng);
  ASSERT_TRUE(sig.ok());
  EXPECT_FALSE(Lsag::Verify(*sig, "forged"));
}

TEST(LsagTest, TamperedResponseRejected) {
  RingFixture fx(3);
  common::Rng rng(4);
  auto sig = Lsag::Sign(fx.ring, 1, fx.keys[1], "msg", &rng);
  ASSERT_TRUE(sig.ok());
  LsagSignature bad = *sig;
  bad.responses[0] = ScalarAdd(bad.responses[0], U256::One());
  EXPECT_FALSE(Lsag::Verify(bad, "msg"));
}

TEST(LsagTest, TamperedC0Rejected) {
  RingFixture fx(3);
  common::Rng rng(5);
  auto sig = Lsag::Sign(fx.ring, 1, fx.keys[1], "msg", &rng);
  ASSERT_TRUE(sig.ok());
  LsagSignature bad = *sig;
  bad.c0 = ScalarAdd(bad.c0, U256::One());
  EXPECT_FALSE(Lsag::Verify(bad, "msg"));
}

TEST(LsagTest, SwappedKeyImageRejected) {
  RingFixture fx(3);
  common::Rng rng(6);
  auto sig1 = Lsag::Sign(fx.ring, 0, fx.keys[0], "msg", &rng);
  auto sig2 = Lsag::Sign(fx.ring, 1, fx.keys[1], "msg", &rng);
  ASSERT_TRUE(sig1.ok());
  ASSERT_TRUE(sig2.ok());
  LsagSignature frankenstein = *sig1;
  frankenstein.key_image = sig2->key_image;
  EXPECT_FALSE(Lsag::Verify(frankenstein, "msg"));
}

TEST(LsagTest, RingMembershipIsBound) {
  RingFixture fx(3);
  common::Rng rng(7);
  auto sig = Lsag::Sign(fx.ring, 0, fx.keys[0], "msg", &rng);
  ASSERT_TRUE(sig.ok());
  // Replacing a ring member invalidates the signature.
  LsagSignature bad = *sig;
  common::Rng rng2(8);
  bad.ring[2] = Keypair::Generate(&rng2).pub;
  EXPECT_FALSE(Lsag::Verify(bad, "msg"));
}

TEST(LsagTest, SameKeySignaturesAreLinked) {
  RingFixture fx(4);
  common::Rng rng(9);
  // Same signer, two different rings/messages: key image must match.
  RingFixture fx2(4, 123);
  std::vector<Point> other_ring = fx2.ring;
  other_ring[1] = fx.keys[2].pub;
  auto sig1 = Lsag::Sign(fx.ring, 2, fx.keys[2], "first spend", &rng);
  auto sig2 = Lsag::Sign(other_ring, 1, fx.keys[2], "second spend", &rng);
  ASSERT_TRUE(sig1.ok());
  ASSERT_TRUE(sig2.ok());
  EXPECT_TRUE(Lsag::Linked(*sig1, *sig2));
}

TEST(LsagTest, DifferentKeysAreNotLinked) {
  RingFixture fx(4);
  common::Rng rng(10);
  auto sig1 = Lsag::Sign(fx.ring, 0, fx.keys[0], "a", &rng);
  auto sig2 = Lsag::Sign(fx.ring, 1, fx.keys[1], "b", &rng);
  ASSERT_TRUE(sig1.ok());
  ASSERT_TRUE(sig2.ok());
  EXPECT_FALSE(Lsag::Linked(*sig1, *sig2));
}

TEST(LsagTest, SignatureDoesNotRevealSignerIndex) {
  // Structural check: responses are all in-range scalars and the
  // signature layout is independent of the signer position.
  RingFixture fx(6);
  common::Rng rng(11);
  for (size_t j : {0u, 3u, 5u}) {
    auto sig = Lsag::Sign(fx.ring, j, fx.keys[j], "msg", &rng);
    ASSERT_TRUE(sig.ok());
    EXPECT_EQ(sig->responses.size(), fx.ring.size());
    for (const U256& s : sig->responses) {
      EXPECT_TRUE(s < GroupOrder());
    }
  }
}

TEST(LsagTest, RejectsInvalidArguments) {
  RingFixture fx(3);
  common::Rng rng(12);
  // Ring too small.
  std::vector<Point> tiny = {fx.ring[0]};
  EXPECT_TRUE(Lsag::Sign(tiny, 0, fx.keys[0], "m", &rng)
                  .status()
                  .IsInvalidArgument());
  // Signer index out of range.
  EXPECT_TRUE(Lsag::Sign(fx.ring, 9, fx.keys[0], "m", &rng)
                  .status()
                  .IsInvalidArgument());
  // Mismatched signer key.
  EXPECT_TRUE(Lsag::Sign(fx.ring, 0, fx.keys[1], "m", &rng)
                  .status()
                  .IsInvalidArgument());
}

TEST(LsagTest, VerifyRejectsMalformedStructures) {
  RingFixture fx(3);
  common::Rng rng(13);
  auto sig = Lsag::Sign(fx.ring, 0, fx.keys[0], "m", &rng);
  ASSERT_TRUE(sig.ok());
  LsagSignature bad = *sig;
  bad.responses.pop_back();
  EXPECT_FALSE(Lsag::Verify(bad, "m"));
  bad = *sig;
  bad.key_image = Point::Infinity();
  EXPECT_FALSE(Lsag::Verify(bad, "m"));
  bad = *sig;
  bad.c0 = U256::Zero();
  EXPECT_FALSE(Lsag::Verify(bad, "m"));
}

TEST(KeyImageRegistryTest, DetectsDoubleSpend) {
  RingFixture fx(3);
  common::Rng rng(14);
  auto sig1 = Lsag::Sign(fx.ring, 0, fx.keys[0], "first", &rng);
  ASSERT_TRUE(sig1.ok());
  KeyImageRegistry registry;
  EXPECT_TRUE(registry.Register(sig1->key_image).ok());
  EXPECT_TRUE(registry.Contains(sig1->key_image));
  // Second spend with the same key (different ring) is rejected.
  auto sig2 = Lsag::Sign(fx.ring, 0, fx.keys[0], "second", &rng);
  ASSERT_TRUE(sig2.ok());
  auto st = registry.Register(sig2->key_image);
  EXPECT_EQ(st.code(), common::StatusCode::kAlreadyExists);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(KeyImageRegistryTest, DistinctKeysCoexist) {
  RingFixture fx(3);
  common::Rng rng(15);
  KeyImageRegistry registry;
  for (size_t j = 0; j < 3; ++j) {
    auto sig = Lsag::Sign(fx.ring, j, fx.keys[j], "m", &rng);
    ASSERT_TRUE(sig.ok());
    EXPECT_TRUE(registry.Register(sig->key_image).ok());
  }
  EXPECT_EQ(registry.size(), 3u);
}

// Ring-size sweep: sign/verify across the sizes used in the examples and
// benchmarks (Monero's default 11 included).
class LsagRingSizeSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(LsagRingSizeSweep, SignVerifyAtSize) {
  size_t n = GetParam();
  RingFixture fx(n, 1000 + n);
  common::Rng rng(2000 + n);
  size_t signer = n / 2;
  auto sig = Lsag::Sign(fx.ring, signer, fx.keys[signer], "sweep", &rng);
  ASSERT_TRUE(sig.ok());
  EXPECT_TRUE(Lsag::Verify(*sig, "sweep"));
  EXPECT_FALSE(Lsag::Verify(*sig, "other"));
}

INSTANTIATE_TEST_SUITE_P(Sizes, LsagRingSizeSweep,
                         ::testing::Values(2, 3, 5, 8, 11, 16));

}  // namespace
}  // namespace tokenmagic::crypto
