// Unit tests for the branch-free constant-time primitives (crypto/ct.h).
// Functional correctness only — the timing property itself is enforced
// by tm_ct (static) and the poisoned-secret harness (dynamic).

#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "common/rng.h"
#include "crypto/ct.h"
#include "crypto/field.h"
#include "crypto/u256.h"

namespace tokenmagic::crypto {
namespace {

TEST(CtEqualsTest, EqualSpans) {
  std::array<uint8_t, 32> a{}, b{};
  for (size_t i = 0; i < a.size(); ++i) a[i] = b[i] = uint8_t(i * 7 + 3);
  EXPECT_TRUE(CtEquals(a, b));
}

TEST(CtEqualsTest, DetectsDifferenceAtEveryPosition) {
  std::array<uint8_t, 16> a{}, b{};
  for (size_t i = 0; i < a.size(); ++i) {
    b = a;
    b[i] ^= 0x80;
    EXPECT_FALSE(CtEquals(a, b)) << "difference at byte " << i << " missed";
  }
}

TEST(CtEqualsTest, LengthMismatchIsFalse) {
  std::array<uint8_t, 4> a{};
  std::array<uint8_t, 5> b{};
  EXPECT_FALSE(CtEquals(a, b));
}

TEST(CtEqualsTest, EmptySpansAreEqual) {
  EXPECT_TRUE(CtEquals({}, {}));
}

TEST(CtSelectTest, SelectsByCondition) {
  U256 t(11), f(22);
  EXPECT_EQ(CtSelect(1, t, f), t);
  EXPECT_EQ(CtSelect(0, t, f), f);
  // Any non-zero condition counts as true, not just 1.
  EXPECT_EQ(CtSelect(0xdeadbeef, t, f), t);
}

TEST(CtIsZeroTest, ZeroAndNonZero) {
  EXPECT_EQ(CtIsZero(U256::Zero()), 1u);
  EXPECT_EQ(CtIsZero(U256::One()), 0u);
  U256 high_only(0, 0, 0, 1);
  EXPECT_EQ(CtIsZero(high_only), 0u);
}

TEST(CtLessTest, MatchesCompare) {
  common::Rng rng(99);
  for (int i = 0; i < 200; ++i) {
    U256 a, b;
    for (auto& limb : a.limbs) limb = rng.Next();
    for (auto& limb : b.limbs) limb = rng.Next();
    EXPECT_EQ(CtLess(a, b), a < b ? 1u : 0u);
  }
  U256 x(5);
  EXPECT_EQ(CtLess(x, x), 0u) << "a < a must be false";
}

TEST(CtValidScalarTest, BoundaryValues) {
  EXPECT_EQ(CtValidScalar(U256::Zero()), 0u) << "zero is not a valid scalar";
  EXPECT_EQ(CtValidScalar(U256::One()), 1u);
  const U256& n = GroupOrder();
  U256 n_minus_1;
  U256::Sub(n, U256::One(), &n_minus_1);
  EXPECT_EQ(CtValidScalar(n_minus_1), 1u);
  EXPECT_EQ(CtValidScalar(n), 0u) << "the group order itself is invalid";
  U256 n_plus_1;
  U256::Add(n, U256::One(), &n_plus_1);
  EXPECT_EQ(CtValidScalar(n_plus_1), 0u);
}

TEST(WipeScalarsTest, WipesEveryElement) {
  std::vector<U256> scalars(5, U256(0x1234));
  WipeScalars(scalars);
  for (const U256& s : scalars) EXPECT_TRUE(s.IsZero());
}

// The poisoning hooks must be safe no-ops in an uninstrumented build.
TEST(CtHooksTest, PoisonDeclassifyAreNoopsWithoutInstrumentation) {
  uint64_t value = 42;
  CtPoison(&value, sizeof(value));
  CtDeclassify(&value, sizeof(value));
  EXPECT_EQ(value, 42u);
}

// Cross-check the wide scalar reduction against the generic slow path:
// ScalarMul/ScalarReduce512 feed every signature, so a reduction bug
// would silently break unlinkability proofs rather than crash.
TEST(ScalarReduceTest, Reduce512MatchesMulMod) {
  common::Rng rng(4242);
  const U256& n = GroupOrder();
  for (int i = 0; i < 100; ++i) {
    U256 a, b;
    for (auto& limb : a.limbs) limb = rng.Next();
    for (auto& limb : b.limbs) limb = rng.Next();
    a = ScalarReduce(a);
    b = ScalarReduce(b);
    U512 wide = U256::Mul(a, b);
    EXPECT_EQ(ScalarReduce512(wide), MulMod(a, b, n));
    EXPECT_EQ(ScalarMul(a, b), MulMod(a, b, n));
  }
}

}  // namespace
}  // namespace tokenmagic::crypto
