#include "crypto/serialize.h"

#include <gtest/gtest.h>

#include "crypto/field.h"

namespace tokenmagic::crypto {
namespace {

LsagSignature MakeSignature(size_t ring_size, uint64_t seed) {
  common::Rng rng(seed);
  std::vector<Keypair> keys;
  std::vector<Point> ring;
  for (size_t i = 0; i < ring_size; ++i) {
    keys.push_back(Keypair::Generate(&rng));
    ring.push_back(keys.back().pub);
  }
  auto sig = Lsag::Sign(ring, 0, keys[0], "serialize me", &rng);
  EXPECT_TRUE(sig.ok());
  return *sig;
}

TEST(SerializeLsagTest, RoundTripPreservesVerifiability) {
  LsagSignature sig = MakeSignature(5, 1);
  auto bytes = SerializeLsag(sig);
  auto restored = DeserializeLsag(bytes);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->ring.size(), 5u);
  EXPECT_EQ(restored->key_image, sig.key_image);
  EXPECT_EQ(restored->c0, sig.c0);
  EXPECT_EQ(restored->responses, sig.responses);
  EXPECT_TRUE(Lsag::Verify(*restored, "serialize me"));
  EXPECT_FALSE(Lsag::Verify(*restored, "other message"));
}

TEST(SerializeLsagTest, SizeIsExactlyAsDocumented) {
  for (size_t n : {2u, 11u}) {
    LsagSignature sig = MakeSignature(n, 7 + n);
    auto bytes = SerializeLsag(sig);
    EXPECT_EQ(bytes.size(), 1 + 4 + n * 33 + 33 + 32 + n * 32);
    EXPECT_EQ(bytes[0], kLsagMagic);
  }
}

TEST(SerializeLsagTest, RejectsWrongMagic) {
  auto bytes = SerializeLsag(MakeSignature(3, 2));
  bytes[0] = 0x00;
  EXPECT_FALSE(DeserializeLsag(bytes).ok());
}

TEST(SerializeLsagTest, RejectsTruncation) {
  auto bytes = SerializeLsag(MakeSignature(3, 3));
  bytes.pop_back();
  EXPECT_FALSE(DeserializeLsag(bytes).ok());
  EXPECT_FALSE(DeserializeLsag({}).ok());
  EXPECT_FALSE(DeserializeLsag({kLsagMagic, 1, 0, 0}).ok());
}

TEST(SerializeLsagTest, RejectsCorruptedPoint) {
  auto bytes = SerializeLsag(MakeSignature(3, 4));
  // Corrupt the first ring point's x-coordinate beyond repair: set the
  // prefix to an invalid value.
  bytes[5] = 0x07;
  EXPECT_FALSE(DeserializeLsag(bytes).ok());
}

TEST(SerializeLsagTest, RejectsOutOfRangeScalar) {
  LsagSignature sig = MakeSignature(2, 5);
  sig.responses[0] = GroupOrder();  // invalid on purpose
  auto bytes = SerializeLsag(sig);
  EXPECT_FALSE(DeserializeLsag(bytes).ok());
}

TEST(SerializeSchnorrTest, RoundTrip) {
  common::Rng rng(6);
  Keypair key = Keypair::Generate(&rng);
  SchnorrSignature sig = Schnorr::Sign(key, "msg", &rng);
  auto bytes = SerializeSchnorr(sig);
  EXPECT_EQ(bytes.size(), 65u);
  auto restored = DeserializeSchnorr(bytes);
  ASSERT_TRUE(restored.ok());
  EXPECT_TRUE(Schnorr::Verify(key.pub, "msg", *restored));
}

TEST(SerializeSchnorrTest, RejectsBadBlobs) {
  EXPECT_FALSE(DeserializeSchnorr({}).ok());
  std::vector<uint8_t> wrong(65, 0);
  wrong[0] = kLsagMagic;  // wrong magic for this parser
  EXPECT_FALSE(DeserializeSchnorr(wrong).ok());
  std::vector<uint8_t> short_blob(64, 0);
  short_blob[0] = kSchnorrMagic;
  EXPECT_FALSE(DeserializeSchnorr(short_blob).ok());
}

TEST(SerializeCrossTest, MagicBytesKeepFormatsApart) {
  auto lsag_bytes = SerializeLsag(MakeSignature(2, 8));
  EXPECT_FALSE(DeserializeSchnorr(lsag_bytes).ok());
  common::Rng rng(9);
  Keypair key = Keypair::Generate(&rng);
  auto schnorr_bytes = SerializeSchnorr(Schnorr::Sign(key, "m", &rng));
  EXPECT_FALSE(DeserializeLsag(schnorr_bytes).ok());
}

}  // namespace
}  // namespace tokenmagic::crypto
