#include "crypto/secp256k1.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "crypto/field.h"

namespace tokenmagic::crypto {
namespace {

TEST(Secp256k1Test, GeneratorIsOnCurve) {
  EXPECT_TRUE(Secp256k1::IsOnCurve(Secp256k1::Generator()));
  EXPECT_FALSE(Secp256k1::Generator().infinity);
}

TEST(Secp256k1Test, IdentityIsOnCurve) {
  EXPECT_TRUE(Secp256k1::IsOnCurve(Point::Infinity()));
}

TEST(Secp256k1Test, OffCurvePointRejected) {
  Point bogus;
  bogus.x = U256(1);
  bogus.y = U256(1);
  bogus.infinity = false;
  EXPECT_FALSE(Secp256k1::IsOnCurve(bogus));
}

TEST(Secp256k1Test, TwoGMatchesPublishedXCoordinate) {
  Point two_g = Secp256k1::MulBase(U256(2));
  EXPECT_EQ(two_g.x.ToHex(),
            "c6047f9441ed7d6d3045406e95c07cd85c778e4b8cef3ca7abac09b95c70"
            "9ee5");
  EXPECT_TRUE(Secp256k1::IsOnCurve(two_g));
}

TEST(Secp256k1Test, ThreeGMatchesPublishedXCoordinate) {
  Point three_g = Secp256k1::MulBase(U256(3));
  EXPECT_EQ(three_g.x.ToHex(),
            "f9308a019258c31049344f85f89d5229b531c845836f99b08601f113bce0"
            "36f9");
  EXPECT_TRUE(Secp256k1::IsOnCurve(three_g));
}

TEST(Secp256k1Test, DoubleEqualsAddSelf) {
  Point g = Secp256k1::Generator();
  EXPECT_EQ(Secp256k1::Double(g), Secp256k1::Add(g, g));
}

TEST(Secp256k1Test, AdditionIdentityLaws) {
  Point g = Secp256k1::Generator();
  EXPECT_EQ(Secp256k1::Add(g, Point::Infinity()), g);
  EXPECT_EQ(Secp256k1::Add(Point::Infinity(), g), g);
  EXPECT_EQ(Secp256k1::Add(Point::Infinity(), Point::Infinity()),
            Point::Infinity());
}

TEST(Secp256k1Test, AddInverseYieldsIdentity) {
  Point g = Secp256k1::Generator();
  EXPECT_EQ(Secp256k1::Add(g, Secp256k1::Negate(g)), Point::Infinity());
}

TEST(Secp256k1Test, AdditionIsCommutativeAndAssociative) {
  Point a = Secp256k1::MulBase(U256(5));
  Point b = Secp256k1::MulBase(U256(11));
  Point c = Secp256k1::MulBase(U256(17));
  EXPECT_EQ(Secp256k1::Add(a, b), Secp256k1::Add(b, a));
  EXPECT_EQ(Secp256k1::Add(Secp256k1::Add(a, b), c),
            Secp256k1::Add(a, Secp256k1::Add(b, c)));
}

TEST(Secp256k1Test, ScalarMulLinearity) {
  // (a + b) * G == a*G + b*G for random small scalars.
  common::Rng rng(11);
  for (int i = 0; i < 10; ++i) {
    U256 a(rng.Next() & 0xffff);
    U256 b(rng.Next() & 0xffff);
    U256 sum;
    U256::Add(a, b, &sum);
    EXPECT_EQ(Secp256k1::MulBase(sum),
              Secp256k1::Add(Secp256k1::MulBase(a), Secp256k1::MulBase(b)));
  }
}

TEST(Secp256k1Test, OrderTimesGeneratorIsIdentity) {
  EXPECT_EQ(Secp256k1::Mul(GroupOrder(), Secp256k1::Generator()),
            Point::Infinity());
}

TEST(Secp256k1Test, OrderMinusOneTimesGIsNegG) {
  U256 n_minus_1;
  U256::Sub(GroupOrder(), U256::One(), &n_minus_1);
  EXPECT_EQ(Secp256k1::MulBase(n_minus_1),
            Secp256k1::Negate(Secp256k1::Generator()));
}

TEST(Secp256k1Test, ZeroScalarGivesIdentity) {
  EXPECT_EQ(Secp256k1::MulBase(U256::Zero()), Point::Infinity());
  EXPECT_EQ(Secp256k1::Mul(U256(7), Point::Infinity()), Point::Infinity());
}

TEST(Secp256k1Test, MulAddMatchesSeparateOperations) {
  common::Rng rng(13);
  Point p = Secp256k1::MulBase(U256(123456789));
  Point q = Secp256k1::MulBase(U256(987654321));
  for (int i = 0; i < 10; ++i) {
    U256 a(rng.Next());
    U256 b(rng.Next());
    Point expected =
        Secp256k1::Add(Secp256k1::Mul(a, p), Secp256k1::Mul(b, q));
    EXPECT_EQ(Secp256k1::MulAdd(a, p, b, q), expected);
  }
}

TEST(Secp256k1Test, MulAddHandlesZeroScalars) {
  Point p = Secp256k1::MulBase(U256(5));
  Point q = Secp256k1::MulBase(U256(7));
  EXPECT_EQ(Secp256k1::MulAdd(U256::Zero(), p, U256::Zero(), q),
            Point::Infinity());
  EXPECT_EQ(Secp256k1::MulAdd(U256::One(), p, U256::Zero(), q), p);
  EXPECT_EQ(Secp256k1::MulAdd(U256::Zero(), p, U256::One(), q), q);
}

TEST(Secp256k1Test, EncodeDecodeRoundTrip) {
  common::Rng rng(17);
  for (int i = 0; i < 10; ++i) {
    Point p = Secp256k1::MulBase(U256(1 + (rng.Next() >> 1)));
    auto encoded = p.Encode();
    auto decoded = Point::Decode(encoded);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, p);
  }
}

TEST(Secp256k1Test, EncodeDecodeIdentity) {
  auto encoded = Point::Infinity().Encode();
  auto decoded = Point::Decode(encoded);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->infinity);
}

TEST(Secp256k1Test, DecodeRejectsBadPrefix) {
  auto encoded = Secp256k1::Generator().Encode();
  encoded[0] = 0x05;
  EXPECT_FALSE(Point::Decode(encoded).has_value());
}

TEST(Secp256k1Test, DecodeRejectsNonResidueX) {
  // x = 5 gives 125 + 7 = 132; find whether it decodes — if it does, flip
  // to an x with no square root by scanning a few values: at least one of
  // a handful of consecutive x values must be a non-residue.
  int rejected = 0;
  for (uint64_t x = 2; x < 20; ++x) {
    std::array<uint8_t, 33> enc{};
    enc[0] = 0x02;
    auto xb = U256(x).ToBytes();
    std::copy(xb.begin(), xb.end(), enc.begin() + 1);
    if (!Point::Decode(enc).has_value()) ++rejected;
  }
  EXPECT_GT(rejected, 0);
}

TEST(Secp256k1Test, HashToPointIsOnCurveAndDeterministic) {
  const uint8_t data[] = {1, 2, 3, 4};
  Point p1 = Secp256k1::HashToPoint(data, sizeof(data));
  Point p2 = Secp256k1::HashToPoint(data, sizeof(data));
  EXPECT_EQ(p1, p2);
  EXPECT_TRUE(Secp256k1::IsOnCurve(p1));
  EXPECT_FALSE(p1.infinity);
}

TEST(Secp256k1Test, HashToPointDomainsSeparate) {
  const uint8_t data[] = {9, 9};
  Point a = Secp256k1::HashToPoint(data, sizeof(data), "domain-a");
  Point b = Secp256k1::HashToPoint(data, sizeof(data), "domain-b");
  EXPECT_NE(a, b);
}

TEST(Secp256k1Test, HashToPointDifferentInputsDiffer) {
  const uint8_t d1[] = {1};
  const uint8_t d2[] = {2};
  EXPECT_NE(Secp256k1::HashToPoint(d1, 1), Secp256k1::HashToPoint(d2, 1));
}

// Parameterized sweep: k*G stays on the curve and MulAdd agrees for a
// spread of scalar magnitudes.
class ScalarMulSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ScalarMulSweep, MulBaseOnCurveAndConsistent) {
  U256 k(GetParam());
  Point p = Secp256k1::MulBase(k);
  EXPECT_TRUE(Secp256k1::IsOnCurve(p));
  // k*G + k*G == (2k)*G
  U256 two_k;
  U256::Add(k, k, &two_k);
  EXPECT_EQ(Secp256k1::Add(p, p), Secp256k1::MulBase(two_k));
}

INSTANTIATE_TEST_SUITE_P(Scalars, ScalarMulSweep,
                         ::testing::Values(1ull, 2ull, 3ull, 7ull, 255ull,
                                           65537ull, 0xdeadbeefull,
                                           0xffffffffffffffffull));

}  // namespace
}  // namespace tokenmagic::crypto
