#include "crypto/range_proof.h"

#include <gtest/gtest.h>

#include "crypto/field.h"

namespace tokenmagic::crypto {
namespace {

TEST(RangeProofTest, ProveVerifyRoundTrip) {
  common::Rng rng(1);
  Commitment c = Pedersen::Commit(42, &rng);
  auto proof = RangeProver::Prove(c, 8, &rng);
  ASSERT_TRUE(proof.ok());
  EXPECT_EQ(proof->bit_width(), 8u);
  EXPECT_TRUE(RangeProver::Verify(c.point, *proof));
}

TEST(RangeProofTest, BoundaryValues) {
  common::Rng rng(2);
  for (uint64_t value : {0ull, 1ull, 254ull, 255ull}) {
    Commitment c = Pedersen::Commit(value, &rng);
    auto proof = RangeProver::Prove(c, 8, &rng);
    ASSERT_TRUE(proof.ok()) << "value " << value;
    EXPECT_TRUE(RangeProver::Verify(c.point, *proof)) << "value " << value;
  }
}

TEST(RangeProofTest, OutOfRangeValueRefused) {
  common::Rng rng(3);
  Commitment c = Pedersen::Commit(256, &rng);  // needs 9 bits
  auto proof = RangeProver::Prove(c, 8, &rng);
  EXPECT_FALSE(proof.ok());
  EXPECT_TRUE(proof.status().IsInvalidArgument());
}

TEST(RangeProofTest, InvalidBitWidthRefused) {
  common::Rng rng(4);
  Commitment c = Pedersen::Commit(1, &rng);
  EXPECT_FALSE(RangeProver::Prove(c, 0, &rng).ok());
  EXPECT_FALSE(RangeProver::Prove(c, 65, &rng).ok());
}

TEST(RangeProofTest, WrongCommitmentRejected) {
  common::Rng rng(5);
  Commitment c = Pedersen::Commit(10, &rng);
  Commitment other = Pedersen::Commit(10, &rng);
  auto proof = RangeProver::Prove(c, 6, &rng);
  ASSERT_TRUE(proof.ok());
  EXPECT_FALSE(RangeProver::Verify(other.point, *proof));
}

TEST(RangeProofTest, TamperedBitCommitmentRejected) {
  common::Rng rng(6);
  Commitment c = Pedersen::Commit(33, &rng);
  auto proof = RangeProver::Prove(c, 8, &rng);
  ASSERT_TRUE(proof.ok());
  RangeProof bad = *proof;
  bad.bits[2].bit_commitment =
      Secp256k1::Add(bad.bits[2].bit_commitment, Secp256k1::Generator());
  EXPECT_FALSE(RangeProver::Verify(c.point, bad));
}

TEST(RangeProofTest, TamperedResponseRejected) {
  common::Rng rng(7);
  Commitment c = Pedersen::Commit(7, &rng);
  auto proof = RangeProver::Prove(c, 4, &rng);
  ASSERT_TRUE(proof.ok());
  RangeProof bad = *proof;
  bad.bits[0].s0 = ScalarAdd(bad.bits[0].s0, U256::One());
  EXPECT_FALSE(RangeProver::Verify(c.point, bad));
  bad = *proof;
  bad.bits[1].s1 = ScalarAdd(bad.bits[1].s1, U256::One());
  EXPECT_FALSE(RangeProver::Verify(c.point, bad));
  bad = *proof;
  bad.bits[3].c0 = ScalarAdd(bad.bits[3].c0, U256::One());
  EXPECT_FALSE(RangeProver::Verify(c.point, bad));
}

TEST(RangeProofTest, TruncatedProofRejected) {
  common::Rng rng(8);
  Commitment c = Pedersen::Commit(3, &rng);
  auto proof = RangeProver::Prove(c, 4, &rng);
  ASSERT_TRUE(proof.ok());
  RangeProof bad = *proof;
  bad.bits.pop_back();  // Σ 2^i·B_i no longer reassembles C
  EXPECT_FALSE(RangeProver::Verify(c.point, bad));
  RangeProof empty;
  EXPECT_FALSE(RangeProver::Verify(c.point, empty));
}

TEST(RangeProofTest, NegativeValueCannotBeProven) {
  // A "negative" amount is a huge scalar mod n: committing to it and
  // proving an 8-bit range must be impossible. Simulate by committing to
  // v = 2^32 (out of the proven range) and checking Prove refuses; a
  // forged proof from a different opening fails Verify.
  common::Rng rng(9);
  Commitment big = Pedersen::Commit(1ull << 32, &rng);
  EXPECT_FALSE(RangeProver::Prove(big, 8, &rng).ok());
  // Proof for a small value cannot be replayed for the big commitment.
  Commitment small = Pedersen::Commit(5, &rng);
  auto proof = RangeProver::Prove(small, 8, &rng);
  ASSERT_TRUE(proof.ok());
  EXPECT_FALSE(RangeProver::Verify(big.point, *proof));
}

// Width sweep: round trip across the widths used by applications.
class RangeWidthSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(RangeWidthSweep, RoundTripAtWidth) {
  size_t width = GetParam();
  common::Rng rng(100 + width);
  uint64_t value = width >= 64 ? 0xdeadbeefcafebabeull
                               : ((1ull << width) - 1) / 3;
  Commitment c = Pedersen::Commit(value, &rng);
  auto proof = RangeProver::Prove(c, width, &rng);
  ASSERT_TRUE(proof.ok());
  EXPECT_TRUE(RangeProver::Verify(c.point, *proof));
}

INSTANTIATE_TEST_SUITE_P(Widths, RangeWidthSweep,
                         ::testing::Values(1, 2, 4, 8, 16, 32, 64));

}  // namespace
}  // namespace tokenmagic::crypto
