// Deterministic fuzz-style batteries: randomized structural mutations
// that must never be accepted, and differential checks of the bigint
// arithmetic against independent reference computations.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "crypto/field.h"
#include "crypto/serialize.h"

namespace tokenmagic::crypto {
namespace {

TEST(SerializeFuzzTest, Everysingle0ByteFlipIsRejectedOrFailsVerify) {
  common::Rng rng(42);
  std::vector<Keypair> keys;
  std::vector<Point> ring;
  for (int i = 0; i < 3; ++i) {
    keys.push_back(Keypair::Generate(&rng));
    ring.push_back(keys.back().pub);
  }
  auto sig = Lsag::Sign(ring, 1, keys[1], "fuzz target", &rng);
  ASSERT_TRUE(sig.ok());
  auto bytes = SerializeLsag(*sig);
  ASSERT_TRUE(Lsag::Verify(*DeserializeLsag(bytes), "fuzz target"));

  // Flip one byte at a time through the whole blob: the result must
  // never deserialize into a signature that verifies.
  for (size_t i = 0; i < bytes.size(); ++i) {
    std::vector<uint8_t> mutated = bytes;
    mutated[i] ^= 0x5a;
    auto parsed = DeserializeLsag(mutated);
    if (!parsed.ok()) continue;  // structurally rejected: fine
    EXPECT_FALSE(Lsag::Verify(*parsed, "fuzz target"))
        << "byte " << i << " flip produced a verifying signature";
  }
}

TEST(SerializeFuzzTest, RandomBlobsNeverCrash) {
  common::Rng rng(43);
  for (int trial = 0; trial < 200; ++trial) {
    size_t size = rng.NextBounded(300);
    std::vector<uint8_t> blob(size);
    for (auto& b : blob) b = static_cast<uint8_t>(rng.Next());
    // Must return an error or a structurally valid object — never crash.
    auto lsag = DeserializeLsag(blob);
    if (lsag.ok()) {
      EXPECT_FALSE(Lsag::Verify(*lsag, "random"));
    }
    auto schnorr = DeserializeSchnorr(blob);
    (void)schnorr;
  }
}

TEST(U256FuzzTest, DivModIdentityAgainstRandomInputs) {
  // For random a, m: a mod m < m, and the 512-bit path agrees with the
  // 256-bit path when the input fits.
  common::Rng rng(44);
  for (int trial = 0; trial < 500; ++trial) {
    U256 a(rng.Next(), rng.Next(), rng.Next(), rng.Next());
    U256 m(rng.Next(), rng.Next(), rng.Next() & 0xff, 0);
    if (m.IsZero()) m = U256::One();
    U256 r = U256::Mod(a, m);
    EXPECT_LT(U256::Compare(r, m), 0);
    U512 wide;
    for (int i = 0; i < 4; ++i) wide.limbs[i] = a.limbs[i];
    EXPECT_EQ(U512::Mod(wide, m), r);
  }
}

TEST(U256FuzzTest, MulModDistributesOverAdd) {
  common::Rng rng(45);
  const U256& n = GroupOrder();
  for (int trial = 0; trial < 200; ++trial) {
    U256 a = ScalarReduce(U256(rng.Next(), rng.Next(), rng.Next(),
                               rng.Next()));
    U256 b = ScalarReduce(U256(rng.Next(), rng.Next(), rng.Next(),
                               rng.Next()));
    U256 c = ScalarReduce(U256(rng.Next(), rng.Next(), rng.Next(),
                               rng.Next()));
    // a*(b+c) == a*b + a*c  (mod n)
    U256 lhs = MulMod(a, AddMod(b, c, n), n);
    U256 rhs = AddMod(MulMod(a, b, n), MulMod(a, c, n), n);
    EXPECT_EQ(lhs, rhs);
  }
}

TEST(U256FuzzTest, FieldReduceIdempotentAndCanonical) {
  common::Rng rng(46);
  for (int trial = 0; trial < 300; ++trial) {
    U512 x;
    for (auto& limb : x.limbs) limb = rng.Next();
    U256 reduced = FieldReduce(x);
    EXPECT_LT(U256::Compare(reduced, FieldPrime()), 0);
    // Reducing the already-reduced value is the identity.
    U512 narrow;
    for (int i = 0; i < 4; ++i) narrow.limbs[i] = reduced.limbs[i];
    EXPECT_EQ(FieldReduce(narrow), reduced);
  }
}

TEST(U256FuzzTest, AddSubCarryChainsRoundTrip) {
  common::Rng rng(47);
  for (int trial = 0; trial < 500; ++trial) {
    U256 a(rng.Next(), rng.Next(), rng.Next(), rng.Next());
    U256 b(rng.Next(), rng.Next(), rng.Next(), rng.Next());
    U256 sum, back;
    uint64_t carry = U256::Add(a, b, &sum);
    uint64_t borrow = U256::Sub(sum, b, &back);
    // (a + b) - b == a with matching carry/borrow bookkeeping.
    EXPECT_EQ(back, a);
    EXPECT_EQ(carry, borrow);
  }
}

TEST(PointFuzzTest, DecodeNeverAcceptsOffCurve) {
  common::Rng rng(48);
  size_t accepted = 0;
  for (int trial = 0; trial < 300; ++trial) {
    std::array<uint8_t, 33> enc;
    for (auto& b : enc) b = static_cast<uint8_t>(rng.Next());
    enc[0] = rng.NextBool() ? 0x02 : 0x03;
    auto point = Point::Decode(enc);
    if (point.has_value()) {
      ++accepted;
      EXPECT_TRUE(Secp256k1::IsOnCurve(*point));
    }
  }
  // Roughly half of random x values decode (quadratic residues); the
  // check above guarantees every accepted one is genuinely on-curve.
  EXPECT_GT(accepted, 50u);
}

}  // namespace
}  // namespace tokenmagic::crypto
