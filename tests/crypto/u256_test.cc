#include "crypto/u256.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace tokenmagic::crypto {
namespace {

U256 FromHexOrDie(std::string_view hex) {
  U256 out;
  EXPECT_TRUE(U256::FromHex(hex, &out));
  return out;
}

TEST(U256Test, ZeroAndOne) {
  EXPECT_TRUE(U256::Zero().IsZero());
  EXPECT_FALSE(U256::One().IsZero());
  EXPECT_TRUE(U256::One().IsOdd());
  EXPECT_FALSE(U256(2).IsOdd());
}

TEST(U256Test, HexRoundTrip) {
  U256 v(0x1122334455667788ull, 0x99aabbccddeeff00ull, 0x0123456789abcdefull,
         0xfedcba9876543210ull);
  U256 parsed = FromHexOrDie(v.ToHex());
  EXPECT_EQ(parsed, v);
}

TEST(U256Test, FromHexAcceptsPrefixAndShortStrings) {
  EXPECT_EQ(FromHexOrDie("0xff"), U256(255));
  EXPECT_EQ(FromHexOrDie("FF"), U256(255));
  EXPECT_EQ(FromHexOrDie("0"), U256::Zero());
}

TEST(U256Test, FromHexRejectsBadInput) {
  U256 out;
  EXPECT_FALSE(U256::FromHex("", &out));
  EXPECT_FALSE(U256::FromHex("0x", &out));
  EXPECT_FALSE(U256::FromHex("xyz", &out));
  EXPECT_FALSE(U256::FromHex(std::string(65, 'f'), &out));  // too long
}

TEST(U256Test, BytesRoundTrip) {
  U256 v = FromHexOrDie(
      "0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef");
  auto bytes = v.ToBytes();
  EXPECT_EQ(bytes[0], 0x01);   // big-endian: MSB first
  EXPECT_EQ(bytes[31], 0xef);
  EXPECT_EQ(U256::FromBytes(bytes.data()), v);
}

TEST(U256Test, CompareOrdering) {
  U256 small(5);
  U256 big(0, 1, 0, 0);  // 2^64
  EXPECT_LT(small, big);
  EXPECT_GT(big, small);
  EXPECT_LE(small, small);
  EXPECT_EQ(U256::Compare(small, small), 0);
  EXPECT_EQ(U256::Compare(small, big), -1);
  EXPECT_EQ(U256::Compare(big, small), 1);
}

TEST(U256Test, HighestBit) {
  EXPECT_EQ(U256::Zero().HighestBit(), -1);
  EXPECT_EQ(U256::One().HighestBit(), 0);
  EXPECT_EQ(U256(0x80).HighestBit(), 7);
  EXPECT_EQ(U256(0, 0, 0, 0x8000000000000000ull).HighestBit(), 255);
}

TEST(U256Test, BitAccess) {
  U256 v(0b1010);
  EXPECT_FALSE(v.Bit(0));
  EXPECT_TRUE(v.Bit(1));
  EXPECT_FALSE(v.Bit(2));
  EXPECT_TRUE(v.Bit(3));
  EXPECT_FALSE(v.Bit(200));
}

TEST(U256Test, AddWithCarryChain) {
  // (2^64 - 1) + 1 = 2^64: carry ripples into the next limb.
  U256 a(~0ull, 0, 0, 0);
  U256 sum;
  EXPECT_EQ(U256::Add(a, U256::One(), &sum), 0u);
  EXPECT_EQ(sum, U256(0, 1, 0, 0));
}

TEST(U256Test, AddOverflowReturnsCarry) {
  U256 max(~0ull, ~0ull, ~0ull, ~0ull);
  U256 sum;
  EXPECT_EQ(U256::Add(max, U256::One(), &sum), 1u);
  EXPECT_TRUE(sum.IsZero());
}

TEST(U256Test, SubWithBorrowChain) {
  U256 a(0, 1, 0, 0);  // 2^64
  U256 diff;
  EXPECT_EQ(U256::Sub(a, U256::One(), &diff), 0u);
  EXPECT_EQ(diff, U256(~0ull, 0, 0, 0));
}

TEST(U256Test, SubUnderflowReturnsBorrow) {
  U256 diff;
  EXPECT_EQ(U256::Sub(U256::Zero(), U256::One(), &diff), 1u);
  EXPECT_EQ(diff, U256(~0ull, ~0ull, ~0ull, ~0ull));
}

TEST(U256Test, MulSmallValues) {
  U512 p = U256::Mul(U256(6), U256(7));
  EXPECT_EQ(p.Low(), U256(42));
  EXPECT_TRUE(p.High().IsZero());
}

TEST(U256Test, MulFullWidth) {
  // (2^128 - 1)^2 = 2^256 - 2^129 + 1.
  U256 a(~0ull, ~0ull, 0, 0);
  U512 p = U256::Mul(a, a);
  EXPECT_EQ(p.Low(), U256(1, 0, ~0ull - 1, ~0ull));
  EXPECT_EQ(p.High(), U256::Zero());
  // Max * Max: high half is Max - 1, low half is 1.
  U256 max(~0ull, ~0ull, ~0ull, ~0ull);
  U512 p2 = U256::Mul(max, max);
  EXPECT_EQ(p2.Low(), U256::One());
  U256 expect_high;
  U256::Sub(max, U256::One(), &expect_high);
  EXPECT_EQ(p2.High(), expect_high);
}

TEST(U256Test, Shl1ShiftsAndReturnsCarry) {
  U256 v(0, 0, 0, 0x8000000000000000ull);
  EXPECT_EQ(v.Shl1(), 1u);
  EXPECT_TRUE(v.IsZero());
  U256 w(1);
  EXPECT_EQ(w.Shl1(), 0u);
  EXPECT_EQ(w, U256(2));
}

TEST(U256Test, ModSmall) {
  EXPECT_EQ(U256::Mod(U256(17), U256(5)), U256(2));
  EXPECT_EQ(U256::Mod(U256(4), U256(5)), U256(4));
  EXPECT_EQ(U256::Mod(U256(5), U256(5)), U256::Zero());
}

TEST(U256Test, U512ModMatchesU256ModForSmallInputs) {
  common::Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    U256 a(rng.Next(), rng.Next(), 0, 0);
    U256 m(rng.Next() | 1, 0, 0, 0);
    U512 wide;
    wide.limbs[0] = a.limbs[0];
    wide.limbs[1] = a.limbs[1];
    EXPECT_EQ(U512::Mod(wide, m), U256::Mod(a, m));
  }
}

TEST(U256Test, ModMulAgainstUint128Reference) {
  common::Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    uint64_t a = rng.Next() % 1000000007ull;
    uint64_t b = rng.Next() % 1000000007ull;
    uint64_t m = 1000000007ull;
    unsigned __int128 expected =
        static_cast<unsigned __int128>(a) * b % m;
    EXPECT_EQ(MulMod(U256(a), U256(b), U256(m)),
              U256(static_cast<uint64_t>(expected)));
  }
}

TEST(U256Test, AddSubModInverseProperty) {
  common::Rng rng(3);
  U256 m = FromHexOrDie(
      "fffffffffffffffffffffffffffffffebaaedce6af48a03bbfd25e8cd0364141");
  for (int i = 0; i < 100; ++i) {
    U256 a(rng.Next(), rng.Next(), rng.Next(), 0);
    U256 b(rng.Next(), rng.Next(), rng.Next(), 0);
    a = U256::Mod(a, m);
    b = U256::Mod(b, m);
    EXPECT_EQ(SubMod(AddMod(a, b, m), b, m), a);
    EXPECT_EQ(AddMod(SubMod(a, b, m), b, m), a);
  }
}

TEST(U256Test, PowModSmallCases) {
  EXPECT_EQ(PowMod(U256(2), U256(10), U256(1000)), U256(24));  // 1024 % 1000
  EXPECT_EQ(PowMod(U256(3), U256::Zero(), U256(7)), U256::One());
  EXPECT_EQ(PowMod(U256(5), U256::One(), U256(7)), U256(5));
}

TEST(U256Test, FermatLittleTheorem) {
  // a^(p-1) ≡ 1 (mod p) for prime p.
  U256 p(1000000007ull);
  common::Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    U256 a(1 + rng.Next() % 1000000006ull);
    U256 exponent;
    U256::Sub(p, U256::One(), &exponent);
    EXPECT_EQ(PowMod(a, exponent, p), U256::One());
  }
}

TEST(U256Test, InvModIsMultiplicativeInverse) {
  U256 p(1000000007ull);
  common::Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    U256 a(1 + rng.Next() % 1000000006ull);
    U256 inv = InvMod(a, p);
    EXPECT_EQ(MulMod(a, inv, p), U256::One());
  }
}

TEST(U256Test, MulModAssociativityProperty) {
  common::Rng rng(11);
  U256 m = FromHexOrDie(
      "fffffffefffffc2fffffffffffffffffffffffffffffffffffffffffffffffff");
  // Note: any odd modulus works for the algebraic identity below.
  for (int i = 0; i < 50; ++i) {
    U256 a = U256::Mod(U256(rng.Next(), rng.Next(), rng.Next(), rng.Next()), m);
    U256 b = U256::Mod(U256(rng.Next(), rng.Next(), rng.Next(), rng.Next()), m);
    U256 c = U256::Mod(U256(rng.Next(), rng.Next(), rng.Next(), rng.Next()), m);
    EXPECT_EQ(MulMod(MulMod(a, b, m), c, m), MulMod(a, MulMod(b, c, m), m));
  }
}

}  // namespace
}  // namespace tokenmagic::crypto
