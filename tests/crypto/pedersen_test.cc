#include "crypto/pedersen.h"

#include <gtest/gtest.h>

#include "crypto/field.h"

namespace tokenmagic::crypto {
namespace {

TEST(PedersenTest, ValueGeneratorIsValidAndDistinctFromG) {
  const Point& h = Pedersen::ValueGenerator();
  EXPECT_TRUE(Secp256k1::IsOnCurve(h));
  EXPECT_FALSE(h.infinity);
  EXPECT_NE(h, Secp256k1::Generator());
}

TEST(PedersenTest, CommitOpensCorrectly) {
  common::Rng rng(1);
  Commitment c = Pedersen::Commit(12345, &rng);
  EXPECT_TRUE(Pedersen::VerifyOpening(c.point, c.blinding, 12345));
  EXPECT_FALSE(Pedersen::VerifyOpening(c.point, c.blinding, 12346));
}

TEST(PedersenTest, WrongBlindingRejected) {
  common::Rng rng(2);
  Commitment c = Pedersen::Commit(7, &rng);
  U256 other = ScalarAdd(c.blinding, U256::One());
  EXPECT_FALSE(Pedersen::VerifyOpening(c.point, other, 7));
}

TEST(PedersenTest, ZeroValueCommitmentIsBlindingOnly) {
  Commitment c = Pedersen::CommitWithBlinding(0, U256(42));
  EXPECT_EQ(c.point, Secp256k1::MulBase(U256(42)));
  EXPECT_TRUE(Pedersen::VerifyOpening(c.point, U256(42), 0));
}

TEST(PedersenTest, CommitmentsAreHiding) {
  // Same value, different blinding: indistinguishable points.
  common::Rng rng(3);
  Commitment a = Pedersen::Commit(100, &rng);
  Commitment b = Pedersen::Commit(100, &rng);
  EXPECT_NE(a.point, b.point);
}

TEST(PedersenTest, AdditiveHomomorphism) {
  // C(v1, r1) + C(v2, r2) == C(v1+v2, r1+r2).
  common::Rng rng(4);
  Commitment a = Pedersen::Commit(30, &rng);
  Commitment b = Pedersen::Commit(12, &rng);
  Point sum = Secp256k1::Add(a.point, b.point);
  U256 blinding_sum = ScalarAdd(a.blinding, b.blinding);
  EXPECT_TRUE(Pedersen::VerifyOpening(sum, blinding_sum, 42));
}

TEST(ConfidentialBalanceTest, BalancedTransactionVerifies) {
  common::Rng rng(5);
  std::vector<Commitment> inputs = {Pedersen::Commit(100, &rng)};
  std::vector<Commitment> outputs = {Pedersen::Commit(60, &rng),
                                     Pedersen::Commit(37, &rng)};
  uint64_t fee = 3;
  auto proof = ConfidentialBalance::Prove(inputs, outputs, fee, &rng);
  ASSERT_TRUE(proof.ok());
  EXPECT_TRUE(ConfidentialBalance::Verify(
      {inputs[0].point}, {outputs[0].point, outputs[1].point}, fee,
      *proof));
}

TEST(ConfidentialBalanceTest, ImbalancedProofRefused) {
  common::Rng rng(6);
  std::vector<Commitment> inputs = {Pedersen::Commit(100, &rng)};
  std::vector<Commitment> outputs = {Pedersen::Commit(99, &rng)};
  auto proof = ConfidentialBalance::Prove(inputs, outputs, 3, &rng);
  EXPECT_FALSE(proof.ok());
  EXPECT_TRUE(proof.status().IsInvalidArgument());
}

TEST(ConfidentialBalanceTest, WrongFeeFailsVerification) {
  common::Rng rng(7);
  std::vector<Commitment> inputs = {Pedersen::Commit(50, &rng)};
  std::vector<Commitment> outputs = {Pedersen::Commit(45, &rng)};
  auto proof = ConfidentialBalance::Prove(inputs, outputs, 5, &rng);
  ASSERT_TRUE(proof.ok());
  EXPECT_TRUE(ConfidentialBalance::Verify({inputs[0].point},
                                          {outputs[0].point}, 5, *proof));
  EXPECT_FALSE(ConfidentialBalance::Verify({inputs[0].point},
                                           {outputs[0].point}, 4, *proof));
}

TEST(ConfidentialBalanceTest, SwappedCommitmentFails) {
  common::Rng rng(8);
  std::vector<Commitment> inputs = {Pedersen::Commit(20, &rng)};
  std::vector<Commitment> outputs = {Pedersen::Commit(20, &rng)};
  auto proof = ConfidentialBalance::Prove(inputs, outputs, 0, &rng);
  ASSERT_TRUE(proof.ok());
  // Substitute an unrelated commitment on the output side.
  Commitment other = Pedersen::Commit(20, &rng);
  EXPECT_FALSE(ConfidentialBalance::Verify({inputs[0].point},
                                           {other.point}, 0, *proof));
}

TEST(ConfidentialBalanceTest, MultiInputMultiOutput) {
  common::Rng rng(9);
  std::vector<Commitment> inputs = {Pedersen::Commit(10, &rng),
                                    Pedersen::Commit(25, &rng),
                                    Pedersen::Commit(7, &rng)};
  std::vector<Commitment> outputs = {Pedersen::Commit(40, &rng),
                                     Pedersen::Commit(1, &rng)};
  auto proof = ConfidentialBalance::Prove(inputs, outputs, 1, &rng);
  ASSERT_TRUE(proof.ok());
  std::vector<Point> in_points, out_points;
  for (const auto& c : inputs) in_points.push_back(c.point);
  for (const auto& c : outputs) out_points.push_back(c.point);
  EXPECT_TRUE(ConfidentialBalance::Verify(in_points, out_points, 1, *proof));
}

}  // namespace
}  // namespace tokenmagic::crypto
