// Equivalence and lifetime suite for the epoch-chained AnalysisContext:
// at every block height, the chained View() must be observationally
// byte-identical to a from-scratch AnalysisContext::Build over the same
// prefix, and sealed views must stay valid and unchanged while the chain
// keeps growing. This is the contract that lets node::Node and TokenMagic
// replace rebuild-per-block with O(delta) epoch appends without changing
// any selection or analysis outcome.
#include "analysis/epoch_chain.h"

#include <gtest/gtest.h>

#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "analysis/chain_reaction.h"
#include "chain/ht_index.h"
#include "common/rng.h"

namespace tokenmagic::analysis {
namespace {

using chain::DiversityRequirement;
using chain::HtIndex;
using chain::RsId;
using chain::RsView;
using chain::TokenId;
using Local = AnalysisContext::Local;

/// Asserts every read-surface accessor of `got` matches `want` exactly.
void ExpectSameContext(const AnalysisContext& got,
                       const AnalysisContext& want) {
  ASSERT_EQ(got.token_count(), want.token_count());
  ASSERT_EQ(got.rs_count(), want.rs_count());
  ASSERT_EQ(got.ht_count(), want.ht_count());
  for (Local t = 0; t < want.token_count(); ++t) {
    ASSERT_EQ(got.token_id(t), want.token_id(t));
    ASSERT_EQ(got.HtLocalOf(t), want.HtLocalOf(t));
    ASSERT_EQ(got.HtOf(t), want.HtOf(t));
    ASSERT_EQ(got.LocalOfToken(want.token_id(t)), t);
    std::span<const Local> a = got.RsOfToken(t);
    std::span<const Local> b = want.RsOfToken(t);
    ASSERT_EQ(std::vector<Local>(a.begin(), a.end()),
              std::vector<Local>(b.begin(), b.end()));
  }
  for (Local h = 0; h < want.ht_count(); ++h) {
    ASSERT_EQ(got.ht_id(h), want.ht_id(h));
  }
  for (Local r = 0; r < want.rs_count(); ++r) {
    ASSERT_EQ(got.rs_id(r), want.rs_id(r));
    ASSERT_EQ(got.proposed_at(r), want.proposed_at(r));
    ASSERT_EQ(got.requirement(r).c, want.requirement(r).c);
    ASSERT_EQ(got.requirement(r).ell, want.requirement(r).ell);
    ASSERT_EQ(got.LocalOfRs(want.rs_id(r)), r);
    std::span<const Local> a = got.Members(r);
    std::span<const Local> b = want.Members(r);
    ASSERT_EQ(std::vector<Local>(a.begin(), a.end()),
              std::vector<Local>(b.begin(), b.end()));
    ASSERT_EQ(got.ViewOf(r).members, want.ViewOf(r).members);
  }
  // Misses answer identically too.
  ASSERT_EQ(got.LocalOfToken(1u << 30), want.LocalOfToken(1u << 30));
  ASSERT_EQ(got.LocalOfRs(1u << 30), want.LocalOfRs(1u << 30));
}

/// A growing randomized chain: each block mints a few dense tokens and
/// proposes a few RSs (dense ascending ids) over the tokens minted so far.
struct GrowingChain {
  explicit GrowingChain(uint64_t seed) : rng(seed) {}

  /// Returns (new views, new tokens) for one block.
  void NextBlock(std::vector<RsView>* views, std::vector<TokenId>* tokens) {
    size_t mint = 1 + rng.NextBounded(6);
    for (size_t i = 0; i < mint; ++i) {
      TokenId t = next_token++;
      tokens->push_back(t);
      index.Set(t, 1000 + rng.NextBounded(7));  // few HTs: forced sharing
      universe.push_back(t);
    }
    size_t rings = rng.NextBounded(4);
    for (size_t i = 0; i < rings; ++i) {
      RsView v;
      v.id = next_rs++;
      v.proposed_at = static_cast<chain::Timestamp>(block);
      v.requirement = {1.0, 1 + static_cast<int>(rng.NextBounded(3))};
      size_t size = 1 + rng.NextBounded(5);
      for (size_t k = 0; k < size; ++k) {
        v.members.push_back(rng.NextBounded(next_token));
      }
      std::sort(v.members.begin(), v.members.end());
      v.members.erase(std::unique(v.members.begin(), v.members.end()),
                      v.members.end());
      views->push_back(std::move(v));
      history.push_back(views->back());
    }
    ++block;
  }

  common::Rng rng;
  HtIndex index;
  std::vector<TokenId> universe;
  std::vector<RsView> history;
  TokenId next_token = 0;
  RsId next_rs = 0;
  size_t block = 0;
};

TEST(EpochChainTest, MatchesFromScratchBuildAtEveryHeightManySeeds) {
  // >= 50 randomized histories, equivalence asserted at every height.
  for (uint64_t seed = 1; seed <= 56; ++seed) {
    GrowingChain gen(seed);
    EpochChain chain;
    size_t blocks = 4 + seed % 13;
    for (size_t b = 0; b < blocks; ++b) {
      std::vector<RsView> views;
      std::vector<TokenId> tokens;
      gen.NextBlock(&views, &tokens);
      chain.Append(views, &gen.index, tokens);
      AnalysisContext want =
          AnalysisContext::Build(gen.history, &gen.index, gen.universe);
      ExpectSameContext(chain.View(), want);
      ASSERT_EQ(chain.rs_count(), gen.history.size());
      ASSERT_EQ(chain.token_count(), gen.universe.size());
    }
    ASSERT_EQ(chain.epoch_count(), blocks);
  }
}

TEST(EpochChainTest, SealedViewsSurviveAndIgnoreLaterAppends) {
  GrowingChain gen(1234);
  EpochChain chain;
  std::vector<AnalysisContext> sealed;
  std::vector<size_t> sealed_history;  // prefix length per sealed view
  struct Prefix {
    std::vector<RsView> history;
    std::vector<TokenId> universe;
  };
  std::vector<Prefix> prefixes;
  for (size_t b = 0; b < 40; ++b) {
    std::vector<RsView> views;
    std::vector<TokenId> tokens;
    gen.NextBlock(&views, &tokens);
    chain.Append(views, &gen.index, tokens);
    sealed.push_back(chain.View());
    sealed_history.push_back(chain.History().size());
    prefixes.push_back({gen.history, gen.universe});
  }
  // Only after the chain fully grew (forcing column generations and tail
  // regrows) is every sealed view checked against its own prefix.
  for (size_t b = 0; b < sealed.size(); ++b) {
    AnalysisContext want = AnalysisContext::Build(
        prefixes[b].history, &gen.index, prefixes[b].universe);
    ExpectSameContext(sealed[b], want);
    ASSERT_EQ(sealed_history[b], prefixes[b].history.size());
  }
  // Sealed views keep the core alive even after the chain itself dies.
  AnalysisContext survivor = sealed.back();
  std::span<const RsView> history = chain.History();
  sealed.clear();
  {
    EpochChain graveyard;  // scope marker: original chain destroyed below
    std::swap(graveyard, chain);
  }
  AnalysisContext want = AnalysisContext::Build(
      prefixes.back().history, &gen.index, prefixes.back().universe);
  ExpectSameContext(survivor, want);
  ASSERT_EQ(history.size(), prefixes.back().history.size());
  for (size_t r = 0; r < history.size(); ++r) {
    ASSERT_EQ(history[r].members, prefixes.back().history[r].members);
  }
}

TEST(EpochChainTest, ChainedContextDrivesAnalysisIdentically) {
  // The cascade (the heaviest consumer of the inverted index) must see no
  // difference between the two storage modes.
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    GrowingChain gen(7000 + seed);
    EpochChain chain;
    for (size_t b = 0; b < 12; ++b) {
      std::vector<RsView> views;
      std::vector<TokenId> tokens;
      gen.NextBlock(&views, &tokens);
      chain.Append(views, &gen.index, tokens);
    }
    AnalysisContext built =
        AnalysisContext::Build(gen.history, &gen.index, gen.universe);
    AnalysisResult a = ChainReactionAnalyzer::Cascade(chain.View());
    AnalysisResult b = ChainReactionAnalyzer::Cascade(built);
    ASSERT_EQ(a.spent_tokens, b.spent_tokens);
    ASSERT_EQ(a.revealed_spends, b.revealed_spends);
  }
}

TEST(EpochChainTest, OverlayCascadeMatchesRebuiltExtendedContext) {
  // The liquidity probe's overlay cascade must count exactly what a
  // from-scratch intern of history + prospective RS counts.
  for (uint64_t seed = 1; seed <= 24; ++seed) {
    GrowingChain gen(4000 + seed);
    EpochChain chain;
    for (size_t b = 0; b < 10; ++b) {
      std::vector<RsView> views;
      std::vector<TokenId> tokens;
      gen.NextBlock(&views, &tokens);
      chain.Append(views, &gen.index, tokens);
    }
    RsView prospective;
    prospective.id = chain::kInvalidRs - 1;
    size_t size = 1 + gen.rng.NextBounded(5);
    for (size_t k = 0; k < size; ++k) {
      prospective.members.push_back(gen.rng.NextBounded(gen.next_token));
    }
    std::sort(prospective.members.begin(), prospective.members.end());
    prospective.members.erase(
        std::unique(prospective.members.begin(), prospective.members.end()),
        prospective.members.end());

    std::vector<RsView> extended = gen.history;
    extended.push_back(prospective);
    AnalysisContext rebuilt = AnalysisContext::Build(extended);
    ASSERT_EQ(ChainReactionAnalyzer::CountInferableSpent(chain.View(),
                                                         prospective),
              ChainReactionAnalyzer::CountInferableSpent(rebuilt))
        << "seed " << seed;
  }
}

TEST(EpochChainTest, EmptyAndTokenOnlyEpochs) {
  EpochChain chain;
  chain.Append({}, nullptr, {});
  ExpectSameContext(chain.View(), AnalysisContext::Build({}, nullptr, {}));
  HtIndex index;
  std::vector<TokenId> tokens{0, 1, 2};
  for (TokenId t : tokens) index.Set(t, 500);
  chain.Append({}, &index, tokens);
  AnalysisContext want = AnalysisContext::Build({}, &index, tokens);
  ExpectSameContext(chain.View(), want);
  ASSERT_EQ(chain.View().RsOfToken(0).size(), 0u);
  ASSERT_EQ(chain.epoch_count(), 2u);
  ASSERT_EQ(chain.epoch(1).token_end, 3u);
  ASSERT_EQ(chain.epoch(1).rs_end, 0u);
}

TEST(EpochChainTest, ConcurrentSealedReadersRaceAppends) {
  // Readers hammer sealed views while the writer keeps sealing epochs.
  // Under TSan this pins the tail-table atomics contract; everywhere it
  // pins that sealed views never dangle or change.
  GrowingChain gen(99);
  auto chain = std::make_shared<EpochChain>();
  std::vector<RsView> views;
  std::vector<TokenId> tokens;
  for (size_t b = 0; b < 6; ++b) {
    views.clear();
    tokens.clear();
    gen.NextBlock(&views, &tokens);
    chain->Append(views, &gen.index, tokens);
  }
  AnalysisContext sealed = chain->View();
  std::vector<RsView> sealed_history = gen.history;
  std::vector<TokenId> sealed_universe = gen.universe;

  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int i = 0; i < 4; ++i) {
    readers.emplace_back([&sealed, &stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        size_t edges = 0;
        for (Local t = 0; t < sealed.token_count(); ++t) {
          edges += sealed.RsOfToken(t).size();
        }
        for (Local r = 0; r < sealed.rs_count(); ++r) {
          edges += sealed.Members(r).size();
        }
        ASSERT_GT(edges + 1, 0u);
      }
    });
  }
  for (size_t b = 0; b < 200; ++b) {
    views.clear();
    tokens.clear();
    gen.NextBlock(&views, &tokens);
    chain->Append(views, &gen.index, tokens);
  }
  stop.store(true);
  for (std::thread& t : readers) t.join();
  AnalysisContext want = AnalysisContext::Build(
      sealed_history, &gen.index, sealed_universe);
  ExpectSameContext(sealed, want);
}

}  // namespace
}  // namespace tokenmagic::analysis
