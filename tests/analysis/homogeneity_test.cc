#include "analysis/homogeneity.h"

#include <gtest/gtest.h>

#include "analysis/anonymity.h"
#include "analysis/chain_reaction.h"

namespace tokenmagic::analysis {
namespace {

using chain::RsView;
using chain::HtIndex;
using chain::TokenId;
using chain::TokenRsPair;

// Paper Example 1, first solution: r3 = {t1, t3} with both tokens from
// h1 — the homogeneity attack succeeds without any elimination.
TEST(HomogeneityTest, PaperExample1FirstSolution) {
  HtIndex idx;
  idx.Set(1, 100);  // h1
  idx.Set(3, 100);  // h1
  auto report = ProbeHomogeneity(std::vector<TokenId>{1, 3}, {}, idx);
  EXPECT_TRUE(report.ht_determined);
  EXPECT_EQ(report.distinct_hts, 1u);
  EXPECT_DOUBLE_EQ(report.top_ht_confidence, 1.0);
}

// Paper Section 2.4, first adversary method: r3 = {t1,t2,t3,t4}; knowing
// t2 and t4 are not spent leaves {t1, t3}, both from h1.
TEST(HomogeneityTest, PaperSection24EliminationThenHomogeneity) {
  HtIndex idx;
  idx.Set(1, 100);
  idx.Set(3, 100);
  idx.Set(2, 200);
  idx.Set(4, 300);
  auto no_elim = ProbeHomogeneity(std::vector<TokenId>{1, 2, 3, 4}, {}, idx);
  EXPECT_FALSE(no_elim.ht_determined);
  EXPECT_DOUBLE_EQ(no_elim.top_ht_confidence, 0.5);

  auto with_elim = ProbeHomogeneity(std::vector<TokenId>{1, 2, 3, 4}, {2, 4}, idx);
  EXPECT_TRUE(with_elim.ht_determined);
  EXPECT_EQ(with_elim.surviving, (std::vector<TokenId>{1, 3}));
}

TEST(HomogeneityTest, EmptySurvivorsIsSafeDegenerate) {
  HtIndex idx;
  idx.Set(1, 100);
  auto report = ProbeHomogeneity(std::vector<TokenId>{1}, {1}, idx);
  EXPECT_TRUE(report.surviving.empty());
  EXPECT_FALSE(report.ht_determined);
  EXPECT_EQ(report.top_ht_confidence, 0.0);
}

TEST(HomogeneityTest, ConfidenceTracksDominantHt) {
  HtIndex idx;
  idx.Set(1, 100);
  idx.Set(2, 100);
  idx.Set(3, 100);
  idx.Set(4, 200);
  auto report = ProbeHomogeneity(std::vector<TokenId>{1, 2, 3, 4}, {}, idx);
  EXPECT_FALSE(report.ht_determined);
  EXPECT_EQ(report.distinct_hts, 2u);
  EXPECT_EQ(report.top_ht_frequency, 3);
  EXPECT_DOUBLE_EQ(report.top_ht_confidence, 0.75);
}

RsView View(chain::RsId id, std::vector<TokenId> members) {
  RsView v;
  v.id = id;
  v.members = std::move(members);
  std::sort(v.members.begin(), v.members.end());
  return v;
}

TEST(AnonymityStatsTest, SummarizesAnalysis) {
  std::vector<RsView> history = {View(0, {1, 2}), View(1, {1, 2}),
                                 View(2, {2, 3})};
  auto result = ChainReactionAnalyzer::Analyze(history);
  auto stats = SummarizeAnonymity(result);
  EXPECT_EQ(stats.rs_count, 3u);
  EXPECT_EQ(stats.fully_revealed, 1u);  // r2 -> t3
  EXPECT_EQ(stats.with_eliminations, 1u);
  EXPECT_DOUBLE_EQ(stats.min_anonymity_set, 1.0);
  EXPECT_NEAR(stats.mean_anonymity_set, (2 + 2 + 1) / 3.0, 1e-12);
  EXPECT_GT(stats.mean_entropy_bits, 0.0);
}

TEST(AnonymityStatsTest, EmptyResult) {
  AnalysisResult empty;
  auto stats = SummarizeAnonymity(empty);
  EXPECT_EQ(stats.rs_count, 0u);
  EXPECT_EQ(stats.mean_anonymity_set, 0.0);
}

TEST(DeanonymizationRateTest, CountsExactHits) {
  std::vector<RsView> history = {View(0, {1, 2}), View(1, {1, 2}),
                                 View(2, {2, 3})};
  auto result = ChainReactionAnalyzer::Analyze(history);
  // Truth: r2 spends 3 (matches the forced inference), r0 spends 1.
  std::vector<TokenRsPair> truth = {{1, 0}, {2, 1}, {3, 2}};
  EXPECT_NEAR(DeanonymizationRate(result, truth), 1.0 / 3.0, 1e-12);
  EXPECT_EQ(DeanonymizationRate(result, {}), 0.0);
}

}  // namespace
}  // namespace tokenmagic::analysis
