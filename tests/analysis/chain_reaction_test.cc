#include "analysis/chain_reaction.h"

#include <gtest/gtest.h>

namespace tokenmagic::analysis {
namespace {

using chain::RsId;
using chain::RsView;
using chain::TokenId;
using chain::TokenRsPair;

RsView View(RsId id, std::vector<TokenId> members) {
  RsView v;
  v.id = id;
  v.members = std::move(members);
  std::sort(v.members.begin(), v.members.end());
  v.proposed_at = id;
  return v;
}

// Paper Example 1, second solution: r1 = r2 = {t1, t2}, r3 = {t2, t3}.
// Chain reaction: t1 and t2 are both spent by r1/r2, so r3's spend must
// be t3 — t2 is eliminated from r3.
TEST(AnalyzeTest, PaperExample1ChainReaction) {
  std::vector<RsView> history = {View(1, {1, 2}), View(2, {1, 2}),
                                 View(3, {2, 3})};
  auto result = ChainReactionAnalyzer::Analyze(history);
  EXPECT_FALSE(result.NoTokenEliminated());
  ASSERT_TRUE(result.revealed_spends.count(3));
  EXPECT_EQ(result.revealed_spends.at(3), 3u);
  EXPECT_EQ(result.eliminated.at(3), (std::vector<TokenId>{2}));
  // r1 and r2 remain ambiguous between t1/t2.
  EXPECT_FALSE(result.revealed_spends.count(1));
  EXPECT_FALSE(result.revealed_spends.count(2));
  // But both t1 and t2 are known-spent.
  EXPECT_TRUE(result.spent_tokens.count(1));
  EXPECT_TRUE(result.spent_tokens.count(2));
}

// Paper Example 1, good solution: r3 = {t3, t4} keeps everything hidden.
TEST(AnalyzeTest, PaperExample1GoodSolution) {
  std::vector<RsView> history = {View(1, {1, 2}), View(2, {1, 2}),
                                 View(3, {3, 4})};
  auto result = ChainReactionAnalyzer::Analyze(history);
  EXPECT_TRUE(result.NoTokenEliminated());
  EXPECT_TRUE(result.revealed_spends.empty());
  EXPECT_EQ(result.possible_spends.at(3),
            (std::vector<TokenId>{3, 4}));
}

// Section 3.1 example: after r6 = {t2, t4} joins Example 2's history, the
// spends of r1 and r5 become inferable.
TEST(AnalyzeTest, PaperSection31NewRsBreaksOldOnes) {
  std::vector<RsView> history = {
      View(1, {1, 2, 5}), View(2, {1, 3}), View(3, {1, 3}),
      View(4, {2, 4}),    View(5, {4, 5, 6})};
  auto before = ChainReactionAnalyzer::Analyze(history);
  EXPECT_FALSE(before.revealed_spends.count(1));
  EXPECT_FALSE(before.revealed_spends.count(5));

  history.push_back(View(6, {2, 4}));
  auto after = ChainReactionAnalyzer::Analyze(history);
  ASSERT_TRUE(after.revealed_spends.count(1));
  EXPECT_EQ(after.revealed_spends.at(1), 5u);
  ASSERT_TRUE(after.revealed_spends.count(5));
  EXPECT_EQ(after.revealed_spends.at(5), 6u);
}

TEST(AnalyzeTest, SideInformationEliminatesAndReveals) {
  // r0={1,2}, r1={2,3}. Reveal <2, r0>: then r1 must spend 3.
  std::vector<RsView> history = {View(0, {1, 2}), View(1, {2, 3})};
  SideInformation si;
  si.revealed.push_back(TokenRsPair{2, 0});
  auto result = ChainReactionAnalyzer::Analyze(history, si);
  ASSERT_TRUE(result.revealed_spends.count(1));
  EXPECT_EQ(result.revealed_spends.at(1), 3u);
  // Token 1 is eliminated from r0 by the side info itself.
  EXPECT_EQ(result.eliminated.at(0), (std::vector<TokenId>{1}));
}

TEST(AnalyzeTest, EmptyHistory) {
  auto result = ChainReactionAnalyzer::Analyze({});
  EXPECT_TRUE(result.spent_tokens.empty());
  EXPECT_TRUE(result.revealed_spends.empty());
  EXPECT_TRUE(result.NoTokenEliminated());
}

TEST(AnalyzeTest, SingleRsFullyAmbiguous) {
  std::vector<RsView> history = {View(0, {1, 2, 3})};
  auto result = ChainReactionAnalyzer::Analyze(history);
  EXPECT_TRUE(result.NoTokenEliminated());
  EXPECT_EQ(result.possible_spends.at(0), (std::vector<TokenId>{1, 2, 3}));
}

// Theorem 4.1: n RSs over exactly n tokens => all tokens spent.
TEST(CascadeTest, Theorem41Closure) {
  std::vector<RsView> history = {View(0, {1, 2}), View(1, {2, 3}),
                                 View(2, {1, 3})};
  auto result = ChainReactionAnalyzer::Cascade(history);
  EXPECT_EQ(result.spent_tokens.size(), 3u);
  EXPECT_TRUE(result.spent_tokens.count(1));
  EXPECT_TRUE(result.spent_tokens.count(2));
  EXPECT_TRUE(result.spent_tokens.count(3));
}

TEST(CascadeTest, NoFalsePositives) {
  // 2 RSs over 4 tokens: nothing is provably spent.
  std::vector<RsView> history = {View(0, {1, 2}), View(1, {3, 4})};
  auto result = ChainReactionAnalyzer::Cascade(history);
  EXPECT_TRUE(result.spent_tokens.empty());
}

TEST(CascadeTest, ZeroMixinCascade) {
  // r0={1} is a zero-mixin RS: token 1 revealed; then r1={1,2} must
  // spend 2; then r2={2,3} must spend 3.
  std::vector<RsView> history = {View(0, {1}), View(1, {1, 2}),
                                 View(2, {2, 3})};
  auto result = ChainReactionAnalyzer::Cascade(history);
  EXPECT_EQ(result.revealed_spends.at(0), 1u);
  EXPECT_EQ(result.revealed_spends.at(1), 2u);
  EXPECT_EQ(result.revealed_spends.at(2), 3u);
  EXPECT_EQ(result.spent_tokens.size(), 3u);
}

TEST(CascadeTest, SoundWithRespectToExactAnalysis) {
  // Everything the cascade marks spent must also be spent under the
  // exact analysis on a batch of tricky families.
  std::vector<std::vector<RsView>> cases = {
      {View(0, {1, 2}), View(1, {1, 2}), View(2, {2, 3})},
      {View(0, {1, 2, 3}), View(1, {2, 3}), View(2, {3, 1})},
      {View(0, {1}), View(1, {1, 2, 3})},
  };
  for (const auto& history : cases) {
    auto cascade = ChainReactionAnalyzer::Cascade(history);
    auto exact = ChainReactionAnalyzer::Analyze(history);
    for (const auto& [rs, token] : cascade.revealed_spends) {
      ASSERT_TRUE(exact.possible_spends.count(rs));
      EXPECT_EQ(exact.possible_spends.at(rs),
                (std::vector<TokenId>{token}));
    }
  }
}

TEST(CountInferableSpentTest, MatchesCascade) {
  std::vector<RsView> history = {View(0, {1, 2}), View(1, {1, 2}),
                                 View(2, {5, 6})};
  EXPECT_EQ(ChainReactionAnalyzer::CountInferableSpent(history), 2u);
  EXPECT_EQ(ChainReactionAnalyzer::CountInferableSpent(
                std::span<const RsView>{}),
            0u);
}

TEST(AnalysisResultTest, NoTokenEliminatedReflectsContent) {
  AnalysisResult r;
  EXPECT_TRUE(r.NoTokenEliminated());
  r.eliminated[0] = {};
  EXPECT_TRUE(r.NoTokenEliminated());
  r.eliminated[1] = {7};
  EXPECT_FALSE(r.NoTokenEliminated());
}

}  // namespace
}  // namespace tokenmagic::analysis
