#include "analysis/incremental.h"

#include <gtest/gtest.h>

#include "analysis/chain_reaction.h"
#include "common/rng.h"

namespace tokenmagic::analysis {
namespace {

using chain::RsId;
using chain::RsView;
using chain::TokenId;

RsView View(RsId id, std::vector<TokenId> members) {
  RsView v;
  v.id = id;
  v.members = std::move(members);
  std::sort(v.members.begin(), v.members.end());
  v.proposed_at = id;
  return v;
}

TEST(IncrementalCascadeTest, EmptyState) {
  IncrementalCascade cascade;
  EXPECT_EQ(cascade.InferableSpentCount(), 0u);
  EXPECT_EQ(cascade.rs_count(), 0u);
}

TEST(IncrementalCascadeTest, MatchesBatchOnPaperExample1) {
  IncrementalCascade cascade;
  cascade.Add(View(1, {1, 2}));
  EXPECT_EQ(cascade.InferableSpentCount(), 0u);
  cascade.Add(View(2, {1, 2}));
  // Two identical pairs: both tokens provably spent (Theorem 4.1).
  EXPECT_EQ(cascade.InferableSpentCount(), 2u);
  EXPECT_TRUE(cascade.IsProvablySpent(1));
  EXPECT_TRUE(cascade.IsProvablySpent(2));
  cascade.Add(View(3, {2, 3}));
  // r3 must spend 3.
  EXPECT_TRUE(cascade.IsProvablySpent(3));
  ASSERT_TRUE(cascade.revealed().count(3));
  EXPECT_EQ(cascade.revealed().at(3), 3u);
}

TEST(IncrementalCascadeTest, TriangleClosure) {
  IncrementalCascade cascade;
  cascade.Add(View(0, {1, 2}));
  cascade.Add(View(1, {2, 3}));
  EXPECT_EQ(cascade.InferableSpentCount(), 0u);
  cascade.Add(View(2, {1, 3}));
  EXPECT_EQ(cascade.InferableSpentCount(), 3u);
}

TEST(IncrementalCascadeTest, SpentCountIfAddedDoesNotMutate) {
  IncrementalCascade cascade;
  cascade.Add(View(0, {1, 2}));
  size_t hypothetical = cascade.SpentCountIfAdded(View(1, {1, 2}));
  EXPECT_EQ(hypothetical, 2u);
  EXPECT_EQ(cascade.InferableSpentCount(), 0u);
  EXPECT_EQ(cascade.rs_count(), 1u);
}

TEST(IncrementalCascadeTest, EquivalentToBatchCascadeOnRandomHistories) {
  common::Rng rng(99);
  for (int trial = 0; trial < 40; ++trial) {
    size_t num_tokens = 6 + rng.NextBounded(8);
    size_t num_rs = 2 + rng.NextBounded(6);
    std::vector<RsView> history;
    IncrementalCascade incremental;
    for (size_t r = 0; r < num_rs; ++r) {
      std::vector<TokenId> members;
      size_t size = 1 + rng.NextBounded(3);
      for (size_t i = 0; i < size; ++i) {
        members.push_back(rng.NextBounded(num_tokens));
      }
      std::sort(members.begin(), members.end());
      members.erase(std::unique(members.begin(), members.end()),
                    members.end());
      RsView view = View(r, members);
      history.push_back(view);
      incremental.Add(view);

      // After every insertion the incremental state matches the batch
      // cascade over the prefix.
      auto batch = ChainReactionAnalyzer::Cascade(history);
      EXPECT_EQ(incremental.InferableSpentCount(),
                batch.spent_tokens.size())
          << "trial " << trial << " step " << r;
      for (TokenId t : batch.spent_tokens) {
        EXPECT_TRUE(incremental.IsProvablySpent(t))
            << "trial " << trial << " token " << t;
      }
    }
  }
}

TEST(IncrementalCascadeTest, RevealedSpendsMatchBatch) {
  IncrementalCascade incremental;
  std::vector<RsView> history = {View(0, {1}), View(1, {1, 2}),
                                 View(2, {2, 3})};
  for (const auto& view : history) incremental.Add(view);
  auto batch = ChainReactionAnalyzer::Cascade(history);
  EXPECT_EQ(incremental.revealed().size(), batch.revealed_spends.size());
  for (const auto& [rs, token] : batch.revealed_spends) {
    ASSERT_TRUE(incremental.revealed().count(rs));
    EXPECT_EQ(incremental.revealed().at(rs), token);
  }
}

}  // namespace
}  // namespace tokenmagic::analysis
