#include "analysis/matching.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace tokenmagic::analysis {
namespace {

using chain::RsId;
using chain::RsView;
using chain::TokenId;

RsView View(RsId id, std::vector<TokenId> members) {
  RsView v;
  v.id = id;
  v.members = std::move(members);
  std::sort(v.members.begin(), v.members.end());
  v.proposed_at = id;
  return v;
}

TEST(RsFamilyTest, DenseIndexing) {
  std::vector<RsView> views = {View(10, {100, 200}), View(20, {200, 300})};
  RsFamily family(views);
  EXPECT_EQ(family.rs_count(), 2u);
  EXPECT_EQ(family.token_count(), 3u);
  EXPECT_EQ(family.rs_id(family.RsIndexOf(20)), 20u);
  EXPECT_EQ(family.token_id(family.TokenIndexOf(300)), 300u);
  EXPECT_TRUE(family.HasToken(100));
  EXPECT_FALSE(family.HasToken(999));
  // Members are sorted dense indices.
  for (size_t r = 0; r < family.rs_count(); ++r) {
    EXPECT_TRUE(std::is_sorted(family.members(r).begin(),
                               family.members(r).end()));
  }
}

TEST(SdrEnumeratorTest, TwoDisjointRsHaveProductCount) {
  std::vector<RsView> views = {View(0, {1, 2}), View(1, {3, 4})};
  RsFamily family(views);
  auto count = SdrEnumerator::Count(family);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 4u);
  EXPECT_EQ(CountSdrsDp(family), 4u);
}

TEST(SdrEnumeratorTest, SharedTokenReducesCount) {
  // r0={1,2}, r1={2,3}: assignments (1,2),(1,3),(2,3) => 3.
  std::vector<RsView> views = {View(0, {1, 2}), View(1, {2, 3})};
  RsFamily family(views);
  auto count = SdrEnumerator::Count(family);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 3u);
  EXPECT_EQ(CountSdrsDp(family), 3u);
}

TEST(SdrEnumeratorTest, IdenticalPairHasTwoOrders) {
  // Example 1 of the paper: r1 = r2 = {t1, t2} forces {t1, t2} spent.
  std::vector<RsView> views = {View(0, {1, 2}), View(1, {1, 2})};
  RsFamily family(views);
  auto count = SdrEnumerator::Count(family);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 2u);  // (1,2) and (2,1)
}

TEST(SdrEnumeratorTest, InfeasibleFamilyHasZero) {
  // Three RSs over two tokens: pigeonhole.
  std::vector<RsView> views = {View(0, {1, 2}), View(1, {1, 2}),
                               View(2, {1, 2})};
  RsFamily family(views);
  auto count = SdrEnumerator::Count(family);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 0u);
  EXPECT_EQ(CountSdrsDp(family), 0u);
  EXPECT_FALSE(HopcroftKarp::HasCompleteSdr(family));
}

TEST(SdrEnumeratorTest, VisitorSeesValidAssignments) {
  std::vector<RsView> views = {View(0, {1, 2, 3}), View(1, {2, 3})};
  RsFamily family(views);
  size_t visits = 0;
  auto st = SdrEnumerator::Enumerate(
      family, {}, [&](const SdrAssignment& u) {
        ++visits;
        EXPECT_EQ(u.size(), 2u);
        EXPECT_NE(u[0], u[1]);  // distinct tokens
        return true;
      });
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(visits, 4u);  // (1,2),(1,3),(2,3),(3,2)
}

TEST(SdrEnumeratorTest, EarlyStopViaVisitor) {
  std::vector<RsView> views = {View(0, {1, 2, 3, 4})};
  RsFamily family(views);
  size_t visits = 0;
  auto st = SdrEnumerator::Enumerate(family, {},
                                     [&](const SdrAssignment&) {
                                       ++visits;
                                       return visits < 2;
                                     });
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(visits, 2u);
}

TEST(SdrEnumeratorTest, MaxResultsCapReported) {
  std::vector<RsView> views = {View(0, {1, 2, 3, 4, 5})};
  RsFamily family(views);
  SdrEnumerator::Options options;
  options.max_results = 3;
  size_t visits = 0;
  auto st = SdrEnumerator::Enumerate(family, options,
                                     [&](const SdrAssignment&) {
                                       ++visits;
                                       return true;
                                     });
  EXPECT_EQ(st.code(), common::StatusCode::kResourceExhausted);
  EXPECT_EQ(visits, 3u);
}

TEST(SdrEnumeratorTest, ForcedAssignmentRestrictsEnumeration) {
  std::vector<RsView> views = {View(0, {1, 2}), View(1, {2, 3})};
  RsFamily family(views);
  SdrEnumerator::Options options;
  options.forced.assign(2, SdrEnumerator::kUnassigned);
  options.forced[family.RsIndexOf(0)] = family.TokenIndexOf(2);
  size_t visits = 0;
  auto st = SdrEnumerator::Enumerate(
      family, options, [&](const SdrAssignment& u) {
        ++visits;
        EXPECT_EQ(u[family.RsIndexOf(0)], family.TokenIndexOf(2));
        return true;
      });
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(visits, 1u);  // r0=2 forces r1=3
}

TEST(SdrEnumeratorTest, InfeasibleForcingYieldsZero) {
  std::vector<RsView> views = {View(0, {1, 2}), View(1, {2})};
  RsFamily family(views);
  SdrEnumerator::Options options;
  options.forced.assign(2, SdrEnumerator::kUnassigned);
  options.forced[family.RsIndexOf(0)] = family.TokenIndexOf(2);
  size_t visits = 0;
  auto st = SdrEnumerator::Enumerate(family, options,
                                     [&](const SdrAssignment&) {
                                       ++visits;
                                       return true;
                                     });
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(visits, 0u);
}

TEST(HopcroftKarpTest, CompleteSdrDetection) {
  std::vector<RsView> feasible = {View(0, {1, 2}), View(1, {2, 3}),
                                  View(2, {3, 1})};
  EXPECT_TRUE(HopcroftKarp::HasCompleteSdr(RsFamily(feasible)));
  std::vector<RsView> infeasible = {View(0, {1}), View(1, {1})};
  EXPECT_FALSE(HopcroftKarp::HasCompleteSdr(RsFamily(infeasible)));
}

TEST(HopcroftKarpTest, PossibleSpendsMatchEnumeration) {
  // Compare HK-based possible-spend sets with brute-force enumeration on
  // random small families.
  common::Rng rng(55);
  for (int trial = 0; trial < 30; ++trial) {
    size_t num_rs = 2 + rng.NextBounded(3);
    size_t num_tokens = num_rs + rng.NextBounded(3);
    std::vector<RsView> views;
    for (size_t r = 0; r < num_rs; ++r) {
      std::vector<TokenId> members;
      for (size_t t = 0; t < num_tokens; ++t) {
        if (rng.NextBool(0.6)) members.push_back(t);
      }
      if (members.empty()) members.push_back(rng.NextBounded(num_tokens));
      views.push_back(View(r, members));
    }
    RsFamily family(views);

    // Brute force: collect per-RS spend sets over all SDRs.
    std::vector<std::set<size_t>> possible_bf(num_rs);
    auto st = SdrEnumerator::Enumerate(
        family, {}, [&](const SdrAssignment& u) {
          for (size_t r = 0; r < num_rs; ++r) possible_bf[r].insert(u[r]);
          return true;
        });
    ASSERT_TRUE(st.ok());

    for (size_t r = 0; r < num_rs; ++r) {
      auto hk = HopcroftKarp::PossibleSpends(family, r);
      std::set<size_t> hk_set(hk.begin(), hk.end());
      EXPECT_EQ(hk_set, possible_bf[r]) << "trial " << trial << " rs " << r;
    }
  }
}

TEST(CountSdrsDpTest, MatchesBacktrackingOnRandomFamilies) {
  common::Rng rng(77);
  for (int trial = 0; trial < 30; ++trial) {
    size_t num_rs = 1 + rng.NextBounded(4);
    size_t num_tokens = num_rs + rng.NextBounded(4);
    std::vector<RsView> views;
    for (size_t r = 0; r < num_rs; ++r) {
      std::vector<TokenId> members;
      for (size_t t = 0; t < num_tokens; ++t) {
        if (rng.NextBool(0.5)) members.push_back(t);
      }
      if (members.empty()) members.push_back(rng.NextBounded(num_tokens));
      views.push_back(View(r, members));
    }
    RsFamily family(views);
    auto bt = SdrEnumerator::Count(family);
    ASSERT_TRUE(bt.ok());
    EXPECT_EQ(*bt, CountSdrsDp(family)) << "trial " << trial;
  }
}

TEST(CountSdrsDpTest, EmptyFamilyHasOneSdr) {
  RsFamily family(std::vector<RsView>{});
  EXPECT_EQ(CountSdrsDp(family), 1u);
  auto count = SdrEnumerator::Count(family);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 1u);
}

}  // namespace
}  // namespace tokenmagic::analysis
