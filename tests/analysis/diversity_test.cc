#include "analysis/diversity.h"

#include <gtest/gtest.h>

namespace tokenmagic::analysis {
namespace {

using chain::DiversityRequirement;
using chain::HtIndex;
using chain::TokenId;
using chain::TxId;

HtIndex MakeIndex(std::vector<std::pair<TokenId, TxId>> pairs) {
  return HtIndex::FromPairs(pairs);
}

TEST(HtFrequenciesTest, CountsAndSortsDescending) {
  HtIndex idx = MakeIndex({{0, 10}, {1, 10}, {2, 10}, {3, 20}, {4, 30},
                           {5, 30}});
  auto freq = HtFrequencies(std::vector<TokenId>{0, 1, 2, 3, 4, 5}, idx);
  EXPECT_EQ(freq, (std::vector<int64_t>{3, 2, 1}));
}

TEST(HtFrequenciesTest, EmptyTokenSet) {
  HtIndex idx = MakeIndex({});
  EXPECT_TRUE(HtFrequencies(std::span<const TokenId>{}, idx).empty());
}

TEST(DistinctHtCountTest, Basics) {
  HtIndex idx = MakeIndex({{0, 1}, {1, 1}, {2, 2}});
  EXPECT_EQ(DistinctHtCount(std::vector<TokenId>{0, 1, 2}, idx), 2u);
  EXPECT_EQ(DistinctHtCount(std::vector<TokenId>{0, 1}, idx), 1u);
  EXPECT_EQ(DistinctHtCount(std::span<const TokenId>{}, idx), 0u);
}

// Paper Section 2.5 worked example: r3 = {t1, t3, t4}; t1, t3 from h1,
// t4 from h2 => frequencies {2, 1}.
TEST(RecursiveDiversityTest, PaperSection25Example) {
  std::vector<int64_t> freq = {2, 1};
  // (2, 1): q1 < 2 * (q1 + q2) => 2 < 2*3 = 6: satisfied.
  EXPECT_TRUE(SatisfiesRecursiveDiversity(freq, {2.0, 1}));
  // (3, 2): first condition on r3 itself: 2 < 3 * q2 = 3: satisfied.
  EXPECT_TRUE(SatisfiesRecursiveDiversity(freq, {3.0, 2}));
  // The DTRS {t1, t3}... wait, the DTRS has frequencies {1,1}; the failing
  // case in the paper is the DTRS's {2} vs (3,2): 2 >= 3*0.
  std::vector<int64_t> dtrs_freq = {2};
  EXPECT_FALSE(SatisfiesRecursiveDiversity(dtrs_freq, {3.0, 2}));
}

TEST(RecursiveDiversityTest, EmptyNeverSatisfies) {
  EXPECT_FALSE(SatisfiesRecursiveDiversity(std::vector<int64_t>{},
                                           {10.0, 1}));
}

TEST(RecursiveDiversityTest, EllOneComparesTopAgainstWholeSum) {
  // q1 < c * (q1 + ... + qθ).
  std::vector<int64_t> freq = {5, 3, 2};
  EXPECT_TRUE(SatisfiesRecursiveDiversity(freq, {0.51, 1}));   // 5 < 5.1
  EXPECT_FALSE(SatisfiesRecursiveDiversity(freq, {0.5, 1}));   // 5 == 5
}

TEST(RecursiveDiversityTest, EllBeyondThetaFails) {
  std::vector<int64_t> freq = {1, 1, 1};
  EXPECT_FALSE(SatisfiesRecursiveDiversity(freq, {100.0, 4}));
  EXPECT_TRUE(SatisfiesRecursiveDiversity(freq, {2.0, 3}));  // 1 < 2*1
}

TEST(RecursiveDiversityTest, StrictInequalityAtBoundary) {
  std::vector<int64_t> freq = {2, 2};
  // c=1, ell=2: 2 < 1*2 is false (strict).
  EXPECT_FALSE(SatisfiesRecursiveDiversity(freq, {1.0, 2}));
  EXPECT_TRUE(SatisfiesRecursiveDiversity(freq, {1.01, 2}));
}

TEST(RecursiveDiversityTest, UniformSingletonsAreMaximallyDiverse) {
  std::vector<int64_t> freq(40, 1);
  EXPECT_TRUE(SatisfiesRecursiveDiversity(freq, {0.2, 5}));  // 1 < 0.2*36
  EXPECT_TRUE(SatisfiesRecursiveDiversity(freq, {0.6, 38}));  // 1 < 0.6*3
  EXPECT_FALSE(SatisfiesRecursiveDiversity(freq, {0.6, 40}));  // 1 < 0.6*1?
}

TEST(RecursiveDiversityTest, TokenSetOverloadAgrees) {
  HtIndex idx = MakeIndex({{0, 1}, {1, 1}, {2, 2}, {3, 3}});
  std::vector<TokenId> tokens = {0, 1, 2, 3};
  DiversityRequirement req{1.5, 2};
  EXPECT_EQ(SatisfiesRecursiveDiversity(tokens, idx, req),
            SatisfiesRecursiveDiversity(HtFrequencies(tokens, idx), req));
}

TEST(DiversitySlackTest, NegativeIffSatisfied) {
  std::vector<int64_t> freq = {3, 2, 1};
  DiversityRequirement req{1.0, 2};
  // slack = 3 - 1*(2+1) = 0 -> not satisfied (needs strict <).
  EXPECT_DOUBLE_EQ(DiversitySlack(freq, req), 0.0);
  EXPECT_FALSE(SatisfiesRecursiveDiversity(freq, req));

  DiversityRequirement loose{2.0, 2};
  EXPECT_LT(DiversitySlack(freq, loose), 0.0);
  EXPECT_TRUE(SatisfiesRecursiveDiversity(freq, loose));

  DiversityRequirement tight{0.5, 2};
  EXPECT_GT(DiversitySlack(freq, tight), 0.0);
  EXPECT_FALSE(SatisfiesRecursiveDiversity(freq, tight));
}

TEST(DiversitySlackTest, EmptyIsZero) {
  EXPECT_DOUBLE_EQ(DiversitySlack({}, {1.0, 1}), 0.0);
}

// Parameterized sweep over c for a fixed frequency profile: satisfaction
// must be monotone in c.
class DiversityCSweep : public ::testing::TestWithParam<double> {};

TEST_P(DiversityCSweep, MonotoneInC) {
  std::vector<int64_t> freq = {4, 3, 2, 2, 1};
  double c = GetParam();
  bool sat = SatisfiesRecursiveDiversity(freq, {c, 3});
  bool sat_higher = SatisfiesRecursiveDiversity(freq, {c + 0.5, 3});
  EXPECT_TRUE(!sat || sat_higher);  // sat => sat_higher
}

INSTANTIATE_TEST_SUITE_P(CValues, DiversityCSweep,
                         ::testing::Values(0.2, 0.4, 0.6, 0.8, 1.0, 1.5));

// Monotone in ell (larger ell is stricter).
class DiversityEllSweep : public ::testing::TestWithParam<int> {};

TEST_P(DiversityEllSweep, AntitoneInEll) {
  std::vector<int64_t> freq = {3, 2, 2, 1, 1, 1};
  int ell = GetParam();
  bool sat = SatisfiesRecursiveDiversity(freq, {1.0, ell});
  bool sat_looser = SatisfiesRecursiveDiversity(freq, {1.0, ell - 1});
  EXPECT_TRUE(!sat || sat_looser);  // sat at ell => sat at ell-1
}

INSTANTIATE_TEST_SUITE_P(EllValues, DiversityEllSweep,
                         ::testing::Values(2, 3, 4, 5, 6, 7));

TEST(HtIndexTest, FromBlockchainMapsSourceTx) {
  chain::Blockchain bc;
  bc.AddBlock(0, {2, 3});
  HtIndex idx = HtIndex::FromBlockchain(bc);
  EXPECT_EQ(idx.size(), 5u);
  EXPECT_EQ(idx.HtOf(0), 0u);
  EXPECT_EQ(idx.HtOf(1), 0u);
  EXPECT_EQ(idx.HtOf(2), 1u);
  EXPECT_TRUE(idx.Contains(4));
  EXPECT_FALSE(idx.Contains(5));
}

TEST(HtIndexTest, HtsOfPreservesOrderAndDuplicates) {
  HtIndex idx = MakeIndex({{0, 7}, {1, 8}});
  EXPECT_EQ(idx.HtsOf({1, 0, 1}), (std::vector<TxId>{8, 7, 8}));
}

}  // namespace
}  // namespace tokenmagic::analysis
