#include "analysis/dtrs.h"

#include <gtest/gtest.h>

namespace tokenmagic::analysis {
namespace {

using chain::RsId;
using chain::RsView;
using chain::HtIndex;
using chain::TokenId;
using chain::TokenRsPair;
using chain::TxId;

RsView View(RsId id, std::vector<TokenId> members) {
  RsView v;
  v.id = id;
  v.members = std::move(members);
  std::sort(v.members.begin(), v.members.end());
  v.proposed_at = id;
  return v;
}

HtIndex IdentityIndex(std::vector<TokenId> tokens) {
  // Each token its own HT.
  HtIndex idx;
  for (TokenId t : tokens) idx.Set(t, static_cast<TxId>(t));
  return idx;
}

// Paper Section 2.3: with Example 2's RSs, {<t2, r1>} is a DTRS of r5:
// fixing t2 spent in r1 forces r4 to spend t4, so r5 spends t5 or t6,
// both from HT h1.
TEST(DtrsTest, PaperExample2DtrsOfR5) {
  std::vector<RsView> history = {
      View(1, {1, 2, 5}), View(2, {1, 3}), View(3, {1, 3}),
      View(4, {2, 4}),    View(5, {4, 5, 6})};
  HtIndex idx = IdentityIndex({1, 2, 3, 4});
  // t5 and t6 share HT h1 (= 100).
  idx.Set(5, 100);
  idx.Set(6, 100);

  auto dtrss = DtrsFinder::FindAll(history, 5, idx);
  ASSERT_TRUE(dtrss.ok());
  bool found_t2_r1 = false;
  for (const Dtrs& d : *dtrss) {
    if (d.pairs.size() == 1 && d.pairs[0] == (TokenRsPair{2, 1})) {
      found_t2_r1 = true;
      EXPECT_EQ(d.determined_ht, 100u);
    }
  }
  EXPECT_TRUE(found_t2_r1);
}

// Paper Section 2.4: r4 has three DTRSs — {<t4,r5>}, {<t5,r5>}, {<t2,r1>}.
TEST(DtrsTest, PaperSection24DtrssOfR4) {
  std::vector<RsView> history = {
      View(1, {1, 2, 5}), View(2, {1, 3}), View(3, {1, 3}),
      View(4, {2, 4}),    View(5, {4, 5, 6})};
  HtIndex idx = IdentityIndex({1, 2, 3, 4});
  idx.Set(5, 100);
  idx.Set(6, 100);

  auto dtrss = DtrsFinder::FindAll(history, 4, idx);
  ASSERT_TRUE(dtrss.ok());
  auto has_singleton = [&](TokenId t, RsId r) {
    for (const Dtrs& d : *dtrss) {
      if (d.pairs.size() == 1 && d.pairs[0] == (TokenRsPair{t, r})) {
        return true;
      }
    }
    return false;
  };
  EXPECT_TRUE(has_singleton(4, 5));  // t4 spent in r5 => r4 spends t2
  EXPECT_TRUE(has_singleton(5, 5));  // t5 spent in r5 => r4 spends t4
  EXPECT_TRUE(has_singleton(2, 1));  // t2 spent in r1 => r4 spends t4
}

TEST(DtrsTest, SingleRsHasNoDtrs) {
  std::vector<RsView> history = {View(0, {1, 2})};
  HtIndex idx = IdentityIndex({1, 2});
  auto dtrss = DtrsFinder::FindAll(history, 0, idx);
  ASSERT_TRUE(dtrss.ok());
  EXPECT_TRUE(dtrss->empty());
}

TEST(DtrsTest, MinimalityPrunesSupersets) {
  // r0={1,2}, r1={2,3}: <2,r0> determines r1 spends 3 (HT 3). The pair
  // set {<2,r0>} is minimal, so no 2-pair DTRS containing it survives.
  std::vector<RsView> history = {View(0, {1, 2}), View(1, {2, 3})};
  HtIndex idx = IdentityIndex({1, 2, 3});
  auto dtrss = DtrsFinder::FindAll(history, 1, idx);
  ASSERT_TRUE(dtrss.ok());
  for (const Dtrs& d : *dtrss) {
    if (d.pairs.size() >= 2) {
      bool contains_small = false;
      for (const auto& p : d.pairs) {
        if (p == (TokenRsPair{2, 0})) contains_small = true;
      }
      EXPECT_FALSE(contains_small);
    }
  }
}

TEST(DtrsTest, TokensHelperExtractsTokens) {
  Dtrs d;
  d.pairs = {TokenRsPair{5, 0}, TokenRsPair{9, 1}};
  EXPECT_EQ(d.Tokens(), (std::vector<TokenId>{5, 9}));
}

TEST(HtAlreadyDeterminedTest, HomogeneousRsIsDetermined) {
  // All members share one HT: determined with no side info.
  std::vector<RsView> history = {View(0, {1, 2})};
  HtIndex idx;
  idx.Set(1, 7);
  idx.Set(2, 7);
  auto determined = DtrsFinder::HtAlreadyDetermined(history, 0, idx);
  ASSERT_TRUE(determined.ok());
  EXPECT_TRUE(*determined);
}

TEST(HtAlreadyDeterminedTest, DiverseRsIsNot) {
  std::vector<RsView> history = {View(0, {1, 2})};
  HtIndex idx = IdentityIndex({1, 2});
  auto determined = DtrsFinder::HtAlreadyDetermined(history, 0, idx);
  ASSERT_TRUE(determined.ok());
  EXPECT_FALSE(*determined);
}

TEST(HtAlreadyDeterminedTest, EliminationCanDetermineHt) {
  // r0 = r1 = {1,2}, r2 = {1,2,3}: r2 must spend 3.
  std::vector<RsView> history = {View(0, {1, 2}), View(1, {1, 2}),
                                 View(2, {1, 2, 3})};
  HtIndex idx = IdentityIndex({1, 2, 3});
  auto determined = DtrsFinder::HtAlreadyDetermined(history, 2, idx);
  ASSERT_TRUE(determined.ok());
  EXPECT_TRUE(*determined);
}

// Theorem 6.1 practical check.
TEST(PracticalDtrsTest, LowSubsetCountMeansNoDtrs) {
  // |r| = 4, all different HTs: a DTRS pinning HT h_j needs
  // v >= 4 - 1 + 1 = 4. With v = 1 no DTRS exists: trivially diverse.
  HtIndex idx = IdentityIndex({1, 2, 3, 4});
  EXPECT_TRUE(PracticalDtrsDiversityHolds(std::vector<TokenId>{1, 2, 3, 4}, 1, idx,
                                          {0.0001, 100}));
}

TEST(PracticalDtrsTest, HighSubsetCountActivatesPsiChecks) {
  // v = 4 activates every ψ_{i,j} = r \ T̃_{i,j}, each of size 3 with
  // 3 distinct HTs: satisfies (1, 2) (1 < 1*1... wait: q1=1 < c*(q2+q3)
  // = 1*2) but not (1, 3) (1 < 1*q3 = 1 fails).
  HtIndex idx = IdentityIndex({1, 2, 3, 4});
  EXPECT_TRUE(PracticalDtrsDiversityHolds(std::vector<TokenId>{1, 2, 3, 4}, 4, idx, {1.0, 2}));
  EXPECT_FALSE(PracticalDtrsDiversityHolds(std::vector<TokenId>{1, 2, 3, 4}, 4, idx, {1.0, 3}));
}

TEST(PracticalDtrsTest, HomogeneousRsFailsWhenDtrsExists) {
  HtIndex idx;
  for (TokenId t : {1, 2, 3}) idx.Set(t, 7);
  // Single-HT RS: ψ is empty; with v large enough this is a violation.
  EXPECT_FALSE(PracticalDtrsDiversityHolds(std::vector<TokenId>{1, 2, 3}, 3, idx, {1.0, 1}));
  // With v = 1 the DTRS cannot exist (3 - 3 + 1 = 1 <= 1... existence
  // condition: v >= |r| - |T̃| + 1 = 1, so it DOES exist => violation.
  EXPECT_FALSE(PracticalDtrsDiversityHolds(std::vector<TokenId>{1, 2, 3}, 1, idx, {1.0, 1}));
}

TEST(PracticalDtrsTest, MixedHtsPartialActivation) {
  // Tokens 1,2 from HT a; token 3 from HT b. |r|=3.
  HtIndex idx;
  idx.Set(1, 100);
  idx.Set(2, 100);
  idx.Set(3, 200);
  // DTRS for HT a (T̃ = {1,2}): needs v >= 3-2+1 = 2.
  // DTRS for HT b (T̃ = {3}): needs v >= 3-1+1 = 3.
  // With v = 2: only the HT-a DTRS exists, ψ = {3}: frequencies {1}.
  // (2, 1): 1 < 2*1 ok. (1, 1): 1 < 1 fails.
  EXPECT_TRUE(PracticalDtrsDiversityHolds(std::vector<TokenId>{1, 2, 3}, 2, idx, {2.0, 1}));
  EXPECT_FALSE(PracticalDtrsDiversityHolds(std::vector<TokenId>{1, 2, 3}, 2, idx, {1.0, 1}));
}

TEST(SideInfoThresholdTest, Theorem62Formula) {
  HtIndex idx;
  idx.Set(1, 100);
  idx.Set(2, 100);
  idx.Set(3, 200);
  idx.Set(4, 300);
  // q_M = 2, |r| = 4 => threshold 2.
  EXPECT_EQ(SideInfoThreshold(std::vector<TokenId>{1, 2, 3, 4}, idx), 2u);
  // Homogeneous: threshold 0 (already knowable).
  HtIndex homo;
  for (TokenId t : {1, 2}) homo.Set(t, 7);
  EXPECT_EQ(SideInfoThreshold(std::vector<TokenId>{1, 2}, homo), 0u);
}

TEST(DtrsTest, CapsAreReported) {
  std::vector<RsView> history = {View(0, {1, 2, 3, 4, 5, 6}),
                                 View(1, {1, 2, 3, 4, 5, 6}),
                                 View(2, {1, 2, 3, 4, 5, 6})};
  HtIndex idx = IdentityIndex({1, 2, 3, 4, 5, 6});
  DtrsFinder::Options options;
  options.max_combinations = 2;
  auto result = DtrsFinder::FindAll(history, 0, idx, options);
  // With a 2-combination cap the search completes on the truncated space
  // (ResourceExhausted is surfaced as a status).
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(),
            common::StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace tokenmagic::analysis
