#include "analysis/related_set.h"

#include <gtest/gtest.h>

namespace tokenmagic::analysis {
namespace {

using chain::RsId;
using chain::RsView;
using chain::TokenId;

RsView View(RsId id, std::vector<TokenId> members) {
  RsView v;
  v.id = id;
  v.members = std::move(members);
  std::sort(v.members.begin(), v.members.end());
  v.proposed_at = id;
  return v;
}

// Paper Example 2: r1={t1,t2,t5}, r2={t1,t3}, r3={t1,t3}, r4={t2,t4},
// r5={t4,t5,t6}. The related set of r4 is {r1, r2, r3, r5}: specifically
// level 0 = {r1, r5} and level 1 = {r2, r3}.
TEST(RelatedSetTest, PaperExample2) {
  std::vector<RsView> history = {
      View(1, {1, 2, 5}), View(2, {1, 3}), View(3, {1, 3}),
      View(5, {4, 5, 6})};
  // Target = r4's members {t2, t4}.
  auto result = ComputeRelatedSet(std::vector<TokenId>{2, 4}, history);
  auto level0 = result.IdsAtLevel(0);
  auto level1 = result.IdsAtLevel(1);
  std::sort(level0.begin(), level0.end());
  std::sort(level1.begin(), level1.end());
  EXPECT_EQ(level0, (std::vector<RsId>{1, 5}));
  EXPECT_EQ(level1, (std::vector<RsId>{2, 3}));
  auto ids = result.Ids();
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids, (std::vector<RsId>{1, 2, 3, 5}));
}

TEST(RelatedSetTest, DisjointHistoryIsUnrelated) {
  std::vector<RsView> history = {View(0, {10, 11}), View(1, {12, 13})};
  auto result = ComputeRelatedSet(std::vector<TokenId>{1, 2}, history);
  EXPECT_TRUE(result.related.empty());
}

TEST(RelatedSetTest, EmptyHistory) {
  auto result = ComputeRelatedSet(std::vector<TokenId>{1, 2},
                                  std::span<const RsView>{});
  EXPECT_TRUE(result.related.empty());
}

TEST(RelatedSetTest, ChainOfSharingDiscoversTransitively) {
  // 0-{1,2}, 1-{2,3}, 2-{3,4}, 3-{4,5}: target {1} pulls the whole chain.
  std::vector<RsView> history = {View(0, {1, 2}), View(1, {2, 3}),
                                 View(2, {3, 4}), View(3, {4, 5})};
  auto result = ComputeRelatedSet(std::vector<TokenId>{1}, history);
  EXPECT_EQ(result.related.size(), 4u);
  EXPECT_EQ(result.IdsAtLevel(0), (std::vector<RsId>{0}));
  EXPECT_EQ(result.IdsAtLevel(1), (std::vector<RsId>{1}));
  EXPECT_EQ(result.IdsAtLevel(2), (std::vector<RsId>{2}));
  EXPECT_EQ(result.IdsAtLevel(3), (std::vector<RsId>{3}));
}

TEST(RelatedSetTest, EachRsDiscoveredOnce) {
  // Diamond: two paths to rs 2; it must appear once at the lower level.
  std::vector<RsView> history = {View(0, {1, 2}), View(1, {1, 3}),
                                 View(2, {2, 3})};
  auto result = ComputeRelatedSet(std::vector<TokenId>{1}, history);
  EXPECT_EQ(result.related.size(), 3u);
  size_t count_rs2 = 0;
  for (const auto& r : result.related) {
    if (r.id == 2) ++count_rs2;
  }
  EXPECT_EQ(count_rs2, 1u);
}

TEST(RelatedSetTest, BatchDisjointnessKeepsSetsLocal) {
  // Two "batches" of RSs with disjoint token ranges: a target in the
  // first batch never reaches the second.
  std::vector<RsView> history = {View(0, {1, 2}), View(1, {2, 3}),
                                 View(2, {100, 101}), View(3, {101, 102})};
  auto result = ComputeRelatedSet(std::vector<TokenId>{3}, history);
  auto ids = result.Ids();
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids, (std::vector<RsId>{0, 1}));
}

}  // namespace
}  // namespace tokenmagic::analysis
