// Equivalence suite for the interned columnar AnalysisContext: every
// context-based read path must produce byte-identical results to the
// legacy vector/hash-map path on randomized histories. This is the
// contract that lets TokenMagic, node::Node, and the selectors share one
// snapshot per batch without changing any analysis outcome.
#include "analysis/context.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <span>
#include <unordered_set>
#include <vector>

#include "analysis/chain_reaction.h"
#include "analysis/diversity.h"
#include "analysis/dtrs.h"
#include "analysis/homogeneity.h"
#include "analysis/incremental.h"
#include "analysis/related_set.h"
#include "chain/ht_index.h"
#include "common/rng.h"

namespace tokenmagic::analysis {
namespace {

using chain::DiversityRequirement;
using chain::HtIndex;
using chain::RsId;
using chain::RsView;
using chain::TokenId;
using chain::TokenRsPair;
using chain::TxId;

RsView View(RsId id, std::vector<TokenId> members) {
  RsView v;
  v.id = id;
  v.members = std::move(members);
  std::sort(v.members.begin(), v.members.end());
  v.members.erase(std::unique(v.members.begin(), v.members.end()),
                  v.members.end());
  v.proposed_at = id;
  v.requirement = {1.0, 1};
  return v;
}

/// One randomized instance: a token universe with HT assignments and a
/// ring history over it. RS ids are deliberately non-dense so the
/// LocalOfRs interning is exercised.
struct RandomHistory {
  std::vector<TokenId> universe;
  HtIndex index;
  std::vector<RsView> history;

  RandomHistory(common::Rng* rng, size_t num_tokens, size_t num_rs) {
    size_t num_hts = 1 + rng->NextBounded(num_tokens);
    for (TokenId t = 0; t < static_cast<TokenId>(num_tokens); ++t) {
      universe.push_back(t);
      index.Set(t, 100 + rng->NextBounded(num_hts));
    }
    for (size_t r = 0; r < num_rs; ++r) {
      size_t size = 1 + rng->NextBounded(5);
      std::vector<TokenId> members;
      for (size_t i = 0; i < size; ++i) {
        members.push_back(rng->NextBounded(num_tokens));
      }
      history.push_back(View(static_cast<RsId>(r * 3 + 7), members));
    }
  }

  AnalysisContext Context() const {
    return AnalysisContext::Build(history, &index, universe);
  }
};

void ExpectSameAnalysis(const AnalysisResult& legacy,
                        const AnalysisResult& dense, const char* what,
                        int trial) {
  EXPECT_EQ(legacy.spent_tokens, dense.spent_tokens)
      << what << " spent_tokens, trial " << trial;
  EXPECT_EQ(legacy.revealed_spends, dense.revealed_spends)
      << what << " revealed_spends, trial " << trial;
  EXPECT_EQ(legacy.eliminated, dense.eliminated)
      << what << " eliminated, trial " << trial;
  EXPECT_EQ(legacy.possible_spends, dense.possible_spends)
      << what << " possible_spends, trial " << trial;
}

TEST(AnalysisContextTest, InterningRoundTripsStructure) {
  common::Rng rng(2026);
  RandomHistory instance(&rng, 20, 8);
  AnalysisContext context = instance.Context();

  ASSERT_EQ(context.rs_count(), instance.history.size());
  EXPECT_EQ(context.token_count(), instance.universe.size());
  for (size_t i = 0; i < instance.history.size(); ++i) {
    const RsView& view = instance.history[i];
    auto rs = static_cast<AnalysisContext::Local>(i);
    EXPECT_EQ(context.rs_id(rs), view.id);
    EXPECT_EQ(context.LocalOfRs(view.id), rs);
    EXPECT_EQ(context.proposed_at(rs), view.proposed_at);

    // Member lists round-trip in the canonical ascending order.
    auto members = context.Members(rs);
    ASSERT_EQ(members.size(), view.members.size());
    for (size_t k = 0; k < members.size(); ++k) {
      EXPECT_EQ(context.token_id(members[k]), view.members[k]);
      EXPECT_TRUE(context.RsContains(rs, members[k]));
    }
    RsView reconstructed = context.ViewOf(rs);
    EXPECT_EQ(reconstructed.id, view.id);
    EXPECT_EQ(reconstructed.members, view.members);
  }
  for (TokenId t : instance.universe) {
    auto token = context.LocalOfToken(t);
    ASSERT_NE(token, AnalysisContext::kNoLocal);
    EXPECT_EQ(context.token_id(token), t);
    EXPECT_EQ(context.HtOf(token), instance.index.HtOf(t));
    // The inverted index lists exactly the RSs whose member list holds t.
    std::vector<RsId> expected;
    for (const RsView& view : instance.history) {
      if (std::binary_search(view.members.begin(), view.members.end(), t)) {
        expected.push_back(view.id);
      }
    }
    std::vector<RsId> actual;
    for (auto rs : context.RsOfToken(token)) actual.push_back(context.rs_id(rs));
    EXPECT_EQ(actual, expected);
  }
  EXPECT_EQ(context.LocalOfToken(999999), AnalysisContext::kNoLocal);
  EXPECT_EQ(context.LocalOfRs(999999), AnalysisContext::kNoLocal);
}

// The central equivalence property: related set, cascade (with and
// without side information), homogeneity, diversity, and the practical
// DTRS checks agree byte-for-byte with the legacy path on >= 100 seeded
// randomized histories.
TEST(AnalysisContextTest, EquivalentToLegacyOnRandomHistories) {
  common::Rng rng(20260806);
  for (int trial = 0; trial < 120; ++trial) {
    size_t num_tokens = 4 + rng.NextBounded(24);
    size_t num_rs = 1 + rng.NextBounded(12);
    RandomHistory instance(&rng, num_tokens, num_rs);
    AnalysisContext context = instance.Context();
    std::span<const RsView> history = instance.history;

    // Related set: identical BFS emission order (ids AND levels).
    std::vector<TokenId> targets;
    size_t num_targets = 1 + rng.NextBounded(3);
    for (size_t i = 0; i < num_targets; ++i) {
      targets.push_back(rng.NextBounded(num_tokens + 2));  // may be absent
    }
    RelatedSetResult legacy_rel = ComputeRelatedSet(targets, history);
    RelatedSetResult dense_rel = ComputeRelatedSet(targets, context);
    ASSERT_EQ(legacy_rel.related.size(), dense_rel.related.size())
        << "trial " << trial;
    for (size_t i = 0; i < legacy_rel.related.size(); ++i) {
      EXPECT_EQ(legacy_rel.related[i].id, dense_rel.related[i].id)
          << "trial " << trial << " pos " << i;
      EXPECT_EQ(legacy_rel.related[i].level, dense_rel.related[i].level)
          << "trial " << trial << " pos " << i;
    }

    // Cascade without side information.
    AnalysisResult baseline = ChainReactionAnalyzer::Cascade(history);
    ExpectSameAnalysis(baseline, ChainReactionAnalyzer::Cascade(context),
                       "cascade", trial);
    EXPECT_EQ(ChainReactionAnalyzer::CountInferableSpent(history),
              ChainReactionAnalyzer::CountInferableSpent(context))
        << "trial " << trial;

    // Cascade under side information, including pairs naming unknown RSs
    // and duplicate pairs for one RS (both have defined legacy semantics).
    SideInformation si;
    size_t num_pairs = rng.NextBounded(4);
    for (size_t i = 0; i < num_pairs; ++i) {
      TokenRsPair pair;
      const RsView& view = instance.history[rng.NextBounded(num_rs)];
      pair.rs = rng.NextBounded(10) == 0 ? 999999 : view.id;
      pair.token = view.members[rng.NextBounded(view.members.size())];
      si.revealed.push_back(pair);
    }
    ExpectSameAnalysis(ChainReactionAnalyzer::Cascade(history, si),
                       ChainReactionAnalyzer::Cascade(context, si),
                       "cascade+si", trial);

    // Incremental bulk-load constructor == batch cascade over the same
    // history. Sequential Adds can soundly infer strictly more: a
    // sub-family that is tight over some prefix stays provably spent
    // even after later RSs grow its component past tightness, so the
    // per-insertion fixpoints accumulate facts the single batch pass
    // cannot rediscover. Hence superset — not equality — vs sequential.
    IncrementalCascade bulk(context);
    EXPECT_EQ(bulk.InferableSpentCount(), baseline.spent_tokens.size())
        << "trial " << trial;
    EXPECT_EQ(bulk.revealed(), baseline.revealed_spends)
        << "trial " << trial;
    IncrementalCascade sequential;
    for (const RsView& view : instance.history) sequential.Add(view);
    for (TokenId t : instance.universe) {
      EXPECT_EQ(bulk.IsProvablySpent(t), baseline.spent_tokens.count(t) > 0)
          << "trial " << trial << " token " << t;
      if (bulk.IsProvablySpent(t)) {
        EXPECT_TRUE(sequential.IsProvablySpent(t))
            << "trial " << trial << " token " << t;
      }
    }
    EXPECT_GE(sequential.InferableSpentCount(), bulk.InferableSpentCount())
        << "trial " << trial;

    // Per-RS probes: homogeneity, diversity, practical DTRS, Theorem 6.2.
    for (const RsView& view : instance.history) {
      std::unordered_set<TokenId> eliminated;
      for (TokenId t : view.members) {
        if (rng.NextBounded(3) == 0) eliminated.insert(t);
      }
      HomogeneityReport legacy_probe =
          ProbeHomogeneity(view.members, eliminated, instance.index);
      HomogeneityReport dense_probe =
          ProbeHomogeneity(view.members, eliminated, context);
      EXPECT_EQ(legacy_probe.surviving, dense_probe.surviving);
      EXPECT_EQ(legacy_probe.distinct_hts, dense_probe.distinct_hts);
      EXPECT_EQ(legacy_probe.top_ht_frequency, dense_probe.top_ht_frequency);
      EXPECT_DOUBLE_EQ(legacy_probe.top_ht_confidence,
                       dense_probe.top_ht_confidence);
      EXPECT_EQ(legacy_probe.ht_determined, dense_probe.ht_determined);

      EXPECT_EQ(HtFrequencies(view.members, instance.index),
                HtFrequencies(view.members, context))
          << "trial " << trial << " rs " << view.id;

      DiversityRequirement req{0.5 + rng.NextBounded(4) * 0.5,
                               1 + static_cast<int>(rng.NextBounded(4))};
      EXPECT_EQ(
          SatisfiesRecursiveDiversity(view.members, instance.index, req),
          SatisfiesRecursiveDiversity(view.members, context, req))
          << "trial " << trial << " rs " << view.id;

      size_t v_super = 1 + rng.NextBounded(4);
      EXPECT_EQ(PracticalDtrsDiversityHolds(view.members, v_super,
                                            instance.index, req),
                PracticalDtrsDiversityHolds(view.members, v_super, context,
                                            req))
          << "trial " << trial << " rs " << view.id;
      EXPECT_EQ(SideInfoThreshold(view.members, instance.index),
                SideInfoThreshold(view.members, context))
          << "trial " << trial << " rs " << view.id;
    }
  }
}

TEST(AnalysisContextTest, EmptyHistory) {
  AnalysisContext context = AnalysisContext::Build({});
  EXPECT_EQ(context.rs_count(), 0u);
  EXPECT_EQ(context.token_count(), 0u);
  auto result = ChainReactionAnalyzer::Cascade(context);
  EXPECT_TRUE(result.spent_tokens.empty());
  EXPECT_TRUE(result.revealed_spends.empty());
  EXPECT_EQ(ChainReactionAnalyzer::CountInferableSpent(context), 0u);
}

TEST(AnalysisContextTest, UniverseOnlyTokensAreInternedWithHts) {
  // Tokens never appearing in a ring must still resolve (the selectors
  // probe candidate mixins that have no ring history yet).
  HtIndex idx;
  for (TokenId t = 0; t < 6; ++t) idx.Set(t, 50 + t / 2);
  std::vector<TokenId> universe = {0, 1, 2, 3, 4, 5};
  std::vector<RsView> history = {View(3, {0, 1})};
  AnalysisContext context = AnalysisContext::Build(history, &idx, universe);
  EXPECT_EQ(context.token_count(), 6u);
  for (TokenId t : universe) {
    auto token = context.LocalOfToken(t);
    ASSERT_NE(token, AnalysisContext::kNoLocal);
    EXPECT_EQ(context.HtOf(token), idx.HtOf(t));
    if (t >= 2) {
      EXPECT_TRUE(context.RsOfToken(token).empty());
    }
  }
}

TEST(AnalysisContextTest, CascadePaperExamples) {
  // Theorem 4.1 triangle closure and the zero-mixin chain, via context.
  std::vector<RsView> triangle = {View(0, {1, 2}), View(1, {2, 3}),
                                  View(2, {1, 3})};
  auto closed = ChainReactionAnalyzer::Cascade(
      AnalysisContext::Build(triangle));
  EXPECT_EQ(closed.spent_tokens.size(), 3u);

  std::vector<RsView> chain = {View(0, {1}), View(1, {1, 2}),
                               View(2, {2, 3})};
  auto revealed = ChainReactionAnalyzer::Cascade(
      AnalysisContext::Build(chain));
  EXPECT_EQ(revealed.revealed_spends.at(0), 1u);
  EXPECT_EQ(revealed.revealed_spends.at(1), 2u);
  EXPECT_EQ(revealed.revealed_spends.at(2), 3u);
}

}  // namespace
}  // namespace tokenmagic::analysis
