// Snapshot-restore → serve round trip: a node's persisted snapshot must
// come back byte-identical through a FileNodeHost-backed server, and a
// corrupted snapshot must fail typed at Open — the host never serves a
// half-restored ledger. This is the crash-recovery contract the regtest
// harness's Kill/Restart steps lean on.
#include <unistd.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/strings.h"
#include "crypto/sha256.h"
#include "gtest/gtest.h"
#include "node/fault_injection.h"
#include "node/snapshot.h"
#include "node/wallet.h"
#include "rpc/client.h"
#include "rpc/server.h"
#include "rpc/testbed.h"
#include "testnet/node_host.h"

namespace tokenmagic::testnet {
namespace {

std::string TestPath(const char* name, const char* ext) {
  return common::StrFormat("/tmp/tm_restore_%d_%s.%s",
                           static_cast<int>(getpid()), name, ext);
}

rpc::Testbed SmallTestbed() {
  rpc::TestbedConfig config;
  config.num_wallets = 6;
  config.tokens_per_wallet = 4;
  config.cluster_size = 2;
  config.spend_rounds = 1;
  config.seed = 11;
  return rpc::BuildTestbed(config);
}

std::string ReadFileOrDie(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  std::string out;
  char buf[4096];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

void WriteFileOrDie(const std::string& path, const std::string& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr) << path;
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
}

TEST(RestoreServeTest, GoodSnapshotRoundTripsByteIdenticalOverTheWire) {
  rpc::Testbed testbed = SmallTestbed();
  std::string expected = node::SnapshotToString(*testbed.node);
  std::string path = TestPath("good", "snapshot");
  ASSERT_TRUE(node::SaveSnapshot(*testbed.node, path).ok());

  auto host = FileNodeHost::Open(path, {});
  ASSERT_TRUE(host.ok()) << host.status().ToString();

  rpc::ServerConfig config;
  config.socket_path = TestPath("good", "sock");
  rpc::Server server(host.value().get(), config);
  ASSERT_TRUE(server.Start().ok());

  auto client = rpc::Client::Connect(config.socket_path);
  ASSERT_TRUE(client.ok());
  auto fetched = client->FetchSnapshot();
  ASSERT_TRUE(fetched.ok()) << fetched.status().ToString();
  // Byte-for-byte: the restore reproduced the exact serialized state.
  EXPECT_EQ(fetched.value(), expected);
  auto digest = client->SnapshotDigest();
  ASSERT_TRUE(digest.ok());
  EXPECT_EQ(digest.value(), crypto::Sha256Hex(expected));
  server.Stop();
}

TEST(RestoreServeTest, CorruptSnapshotFailsTypedAtOpen) {
  rpc::Testbed testbed = SmallTestbed();
  std::string path = TestPath("corrupt", "snapshot");
  ASSERT_TRUE(node::SaveSnapshot(*testbed.node, path).ok());
  std::string good = ReadFileOrDie(path);

  node::FaultInjector faults(21);
  struct Case {
    const char* name;
    std::string bytes;
  } cases[] = {
      {"flipped", faults.CorruptBytes(good, 8)},
      {"truncated", faults.TruncateBytes(good)},
      {"duplicated", faults.DuplicateLine(good)},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(c.name);
    ASSERT_NE(c.bytes, good);
    WriteFileOrDie(path, c.bytes);
    auto host = FileNodeHost::Open(path, {});
    // Typed refusal, never a half-restored serving node.
    ASSERT_FALSE(host.ok());
    EXPECT_TRUE(host.status().IsIoError()) << host.status().ToString();
  }

  // The uncorrupted bytes still open: the failure was the corruption,
  // not the fixture.
  WriteFileOrDie(path, good);
  auto host = FileNodeHost::Open(path, {});
  ASSERT_TRUE(host.ok()) << host.status().ToString();
  EXPECT_EQ(node::SnapshotToString(*host.value()->mutable_node()), good);
}

TEST(RestoreServeTest, InstallingIdenticalSnapshotKeepsCachedAnalysis) {
  // Installing a snapshot of the state the node already serves must not
  // replace the node: a replacement would drop every cached analysis
  // snapshot and epoch chain for nothing (the full-invalidation hammer).
  rpc::Testbed testbed = SmallTestbed();
  std::string path = TestPath("idem", "snapshot");
  ASSERT_TRUE(node::SaveSnapshot(*testbed.node, path).ok());

  auto host = FileNodeHost::Open(path, {});
  ASSERT_TRUE(host.ok()) << host.status().ToString();
  node::Node* live = host.value()->mutable_node();
  std::string blob = node::SnapshotToString(*live);
  auto cached = live->AnalysisSnapshotShared(0);

  rpc::ServerConfig config;
  config.socket_path = TestPath("idem", "sock");
  rpc::Server server(host.value().get(), config);
  ASSERT_TRUE(server.Start().ok());
  auto client = rpc::Client::Connect(config.socket_path);
  ASSERT_TRUE(client.ok());
  auto installed = client->InstallSnapshot(blob);
  ASSERT_TRUE(installed.ok()) << installed.status().ToString();
  ASSERT_TRUE(installed.value().status.ok())
      << installed.value().status.ToString();

  // Digest matched: same node object, and the cached snapshot survived
  // (pointer identity, not just equal contents).
  EXPECT_EQ(host.value()->mutable_node(), live);
  EXPECT_EQ(live->AnalysisSnapshotShared(0).get(), cached.get());
  server.Stop();
}

TEST(RestoreServeTest, RestartAfterMutationsRestoresPersistedState) {
  // Serve mutations through the host, snapshot over the wire, tear the
  // server down (hard stop), reopen from disk: the reopened node must
  // serve exactly the state the last acknowledged mutation persisted.
  std::string path = TestPath("restart", "snapshot");
  std::remove(path.c_str());
  auto host = FileNodeHost::Open(path, {});
  ASSERT_TRUE(host.ok());

  rpc::ServerConfig config;
  config.socket_path = TestPath("restart", "sock");
  std::string before_kill;
  {
    rpc::Server server(host.value().get(), config);
    ASSERT_TRUE(server.Start().ok());
    auto client = rpc::Client::Connect(config.socket_path);
    ASSERT_TRUE(client.ok());

    std::vector<std::vector<crypto::Point>> grants;
    node::Wallet wallet("w", host.value()->mutable_node(), 99);
    grants.push_back({wallet.NewOutputKey(), wallet.NewOutputKey()});
    grants.push_back({wallet.NewOutputKey(), wallet.NewOutputKey()});
    auto minted = client->Genesis(grants);
    ASSERT_TRUE(minted.ok()) << minted.status().ToString();
    auto mined = client->Mine();
    ASSERT_TRUE(mined.ok()) << mined.status().ToString();
    auto digest = client->SnapshotDigest();
    ASSERT_TRUE(digest.ok());
    before_kill = digest.value();
    server.Stop();
  }

  auto reopened = FileNodeHost::Open(path, {});
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  std::string restored =
      node::SnapshotToString(*reopened.value()->mutable_node());
  EXPECT_EQ(crypto::Sha256Hex(restored), before_kill);
}

}  // namespace
}  // namespace tokenmagic::testnet
