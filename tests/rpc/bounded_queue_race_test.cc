// TryPush/Close race pinned under the race detector: producers hammer
// the queue while Close() lands mid-stream. The drain invariant must
// hold exactly — every push that was acknowledged kOk comes out of Pop
// exactly once (nothing admitted is dropped at shutdown), pushes after
// close answer kClosed, and every consumer wakes. Runs in the
// `concurrency` ctest label so the TSan lane exercises it.
#include <atomic>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "rpc/bounded_queue.h"

namespace tokenmagic::rpc {
namespace {

TEST(BoundedQueueRaceTest, TryPushCloseRaceDrainsExactlyTheAdmitted) {
  constexpr int kRounds = 25;
  constexpr int kProducers = 4;
  constexpr int kConsumers = 2;
  constexpr int kCloseAfter = 200;  ///< admitted items before Close lands

  for (int round = 0; round < kRounds; ++round) {
    BoundedQueue<int> queue(16);
    std::atomic<bool> go{false};
    std::atomic<int> admitted{0};
    std::atomic<int> popped{0};

    // Producers push until the queue closes on them — kFull is a shed,
    // not an exit, so the close threshold below is always reached.
    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
      producers.emplace_back([&] {
        while (!go.load()) std::this_thread::yield();
        for (int i = 0;; ++i) {
          switch (queue.TryPush(i)) {
            case BoundedQueue<int>::Push::kOk:
              admitted.fetch_add(1);
              break;
            case BoundedQueue<int>::Push::kFull:
              std::this_thread::yield();  // shed; let a consumer drain
              break;
            case BoundedQueue<int>::Push::kClosed:
              return;  // close is terminal for this producer
          }
        }
      });
    }

    std::vector<std::thread> consumers;
    for (int c = 0; c < kConsumers; ++c) {
      consumers.emplace_back([&] {
        while (queue.Pop().has_value()) popped.fetch_add(1);
      });
    }

    std::thread closer([&] {
      // Land the close somewhere inside the producer burst.
      while (admitted.load() < kCloseAfter) std::this_thread::yield();
      queue.Close();
    });

    go.store(true);
    for (auto& t : producers) t.join();
    closer.join();
    for (auto& t : consumers) t.join();

    // Exact conservation: acknowledged == drained.
    EXPECT_EQ(admitted.load(), popped.load()) << "round " << round;
    EXPECT_GE(admitted.load(), kCloseAfter);
    // Close is sticky.
    EXPECT_EQ(queue.TryPush(0), BoundedQueue<int>::Push::kClosed);
    EXPECT_FALSE(queue.Pop().has_value());
  }
}

}  // namespace
}  // namespace tokenmagic::rpc
