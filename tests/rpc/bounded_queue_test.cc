// BoundedQueue semantics: typed shedding, drain-after-close, blocking
// consumers woken by Close, and multi-producer/consumer accounting.
#include "rpc/bounded_queue.h"

#include <atomic>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace tokenmagic::rpc {
namespace {

using Push = BoundedQueue<int>::Push;

TEST(BoundedQueueTest, ShedsWhenFullInsteadOfBlocking) {
  BoundedQueue<int> queue(2);
  EXPECT_EQ(queue.TryPush(1), Push::kOk);
  EXPECT_EQ(queue.TryPush(2), Push::kOk);
  EXPECT_EQ(queue.TryPush(3), Push::kFull);
  EXPECT_EQ(queue.size(), 2u);
  // Popping frees a slot; admission resumes.
  EXPECT_EQ(queue.Pop().value(), 1);
  EXPECT_EQ(queue.TryPush(4), Push::kOk);
}

TEST(BoundedQueueTest, ClosedQueueRefusesPushesTyped) {
  BoundedQueue<int> queue(4);
  ASSERT_EQ(queue.TryPush(1), Push::kOk);
  queue.Close();
  EXPECT_TRUE(queue.closed());
  EXPECT_EQ(queue.TryPush(2), Push::kClosed);
}

TEST(BoundedQueueTest, DrainsQueuedItemsAfterClose) {
  // Shutdown semantics: items admitted before Close keep coming out so
  // every one of them can be answered (with Cancelled) — only then does
  // Pop return nullopt. Nothing is silently dropped.
  BoundedQueue<int> queue(4);
  ASSERT_EQ(queue.TryPush(10), Push::kOk);
  ASSERT_EQ(queue.TryPush(11), Push::kOk);
  queue.Close();
  EXPECT_EQ(queue.Pop().value(), 10);
  EXPECT_EQ(queue.Pop().value(), 11);
  EXPECT_FALSE(queue.Pop().has_value());
  EXPECT_FALSE(queue.Pop().has_value());  // stays empty, never blocks
}

TEST(BoundedQueueTest, CloseWakesBlockedConsumers) {
  BoundedQueue<int> queue(4);
  std::atomic<int> woke{0};
  std::vector<std::thread> consumers;
  for (int i = 0; i < 3; ++i) {
    consumers.emplace_back([&] {
      while (queue.Pop().has_value()) {
      }
      woke.fetch_add(1);
    });
  }
  queue.Close();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(woke.load(), 3);
}

TEST(BoundedQueueTest, ConcurrentProducersConsumersLoseNothing) {
  // Every successfully pushed item is popped exactly once; sheds are
  // accounted by the producers. pushed == popped at quiescence.
  BoundedQueue<int> queue(8);
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 500;
  std::atomic<int> pushed{0};
  std::atomic<int> shed{0};
  std::atomic<long long> popped_sum{0};
  std::atomic<int> popped{0};

  std::vector<std::thread> consumers;
  for (int c = 0; c < 2; ++c) {
    consumers.emplace_back([&] {
      while (auto item = queue.Pop()) {
        popped_sum.fetch_add(*item);
        popped.fetch_add(1);
      }
    });
  }
  std::vector<std::thread> producers;
  std::atomic<long long> pushed_sum{0};
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        int value = p * kPerProducer + i;
        if (queue.TryPush(value) == Push::kOk) {
          pushed.fetch_add(1);
          pushed_sum.fetch_add(value);
        } else {
          shed.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : producers) t.join();
  queue.Close();
  for (auto& t : consumers) t.join();

  EXPECT_EQ(pushed.load() + shed.load(), kProducers * kPerProducer);
  EXPECT_EQ(popped.load(), pushed.load());
  EXPECT_EQ(popped_sum.load(), pushed_sum.load());
}

}  // namespace
}  // namespace tokenmagic::rpc
