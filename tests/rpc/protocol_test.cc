// Wire-protocol codec tests: roundtrips, strict decoding, and the
// corruption corpus — no byte flip anywhere in a frame may ever be
// misparsed into a well-formed message.
#include "rpc/protocol.h"

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace tokenmagic::rpc {
namespace {

Request MakeRequest() {
  Request request;
  request.op = Op::kSelect;
  request.request_id = 0x1122334455667788ull;
  request.target = 42;
  request.requirement = {2.5, 3};
  request.deadline_millis = 250;
  request.iteration_budget = 100000;
  return request;
}

Response MakeResponse() {
  Response response;
  response.request_id = 0x8877665544332211ull;
  response.status = common::Status::OK();
  response.members = {3, 7, 42, 99};
  response.satisfied = {2.0, 2};
  response.degraded = true;
  response.stage = "TM_P";
  response.server_micros = 1234;
  return response;
}

/// Mimics the receiver side of ReadFrame over an in-memory buffer:
/// header decode, length check, checksum verification, exact size.
common::Status ParseFrameBuffer(const std::string& frame,
                                std::string* payload) {
  if (frame.size() < kFrameHeaderBytes) {
    return common::Status::IoError("short frame header");
  }
  auto header = DecodeFrameHeader(frame.data());
  if (!header.ok()) return header.status();
  if (frame.size() - kFrameHeaderBytes < header->length) {
    return common::Status::IoError("short frame body");
  }
  *payload = frame.substr(kFrameHeaderBytes, header->length);
  if (FrameChecksum(*payload) != header->checksum) {
    return common::Status::InvalidArgument("frame checksum mismatch");
  }
  return common::Status::OK();
}

TEST(ProtocolTest, RequestRoundtrip) {
  Request request = MakeRequest();
  Request decoded;
  ASSERT_TRUE(DecodeRequest(EncodeRequest(request), &decoded).ok());
  EXPECT_EQ(decoded.op, request.op);
  EXPECT_EQ(decoded.request_id, request.request_id);
  EXPECT_EQ(decoded.target, request.target);
  EXPECT_DOUBLE_EQ(decoded.requirement.c, request.requirement.c);
  EXPECT_EQ(decoded.requirement.ell, request.requirement.ell);
  EXPECT_EQ(decoded.deadline_millis, request.deadline_millis);
  EXPECT_EQ(decoded.iteration_budget, request.iteration_budget);
}

TEST(ProtocolTest, ResponseRoundtrip) {
  Response response = MakeResponse();
  response.status = common::Status::Timeout("budget spent");
  response.members.clear();
  Response decoded;
  ASSERT_TRUE(DecodeResponse(EncodeResponse(response), &decoded).ok());
  EXPECT_EQ(decoded.request_id, response.request_id);
  EXPECT_TRUE(decoded.status.IsTimeout());
  EXPECT_EQ(decoded.status.message(), "budget spent");
  EXPECT_TRUE(decoded.members.empty());
  EXPECT_EQ(decoded.degraded, response.degraded);
  EXPECT_EQ(decoded.stage, response.stage);
  EXPECT_EQ(decoded.server_micros, response.server_micros);
}

TEST(ProtocolTest, OkResponseKeepsMessage) {
  // Ping/Stats carry their payload in the OK status message.
  Response response;
  response.request_id = 1;
  response.status = common::Status(common::StatusCode::kOk, "1234");
  Response decoded;
  ASSERT_TRUE(DecodeResponse(EncodeResponse(response), &decoded).ok());
  EXPECT_TRUE(decoded.status.ok());
  EXPECT_EQ(decoded.status.message(), "1234");
}

TEST(ProtocolTest, ResponseMembersRoundtrip) {
  Response response = MakeResponse();
  Response decoded;
  ASSERT_TRUE(DecodeResponse(EncodeResponse(response), &decoded).ok());
  EXPECT_EQ(decoded.members, response.members);
  EXPECT_DOUBLE_EQ(decoded.satisfied.c, response.satisfied.c);
  EXPECT_EQ(decoded.satisfied.ell, response.satisfied.ell);
}

TEST(ProtocolTest, WireStatusCodesAreStable) {
  // The wire mapping is a compatibility contract: values are pinned.
  EXPECT_EQ(StatusCodeToWire(common::StatusCode::kOk), 0);
  EXPECT_EQ(StatusCodeToWire(common::StatusCode::kResourceExhausted), 6);
  EXPECT_EQ(StatusCodeToWire(common::StatusCode::kTimeout), 10);
  EXPECT_EQ(StatusCodeToWire(common::StatusCode::kCancelled), 11);
  for (int code = 0; code <= 11; ++code) {
    EXPECT_EQ(
        static_cast<int>(StatusCodeToWire(WireToStatusCode(
            static_cast<uint8_t>(code)))),
        code);
  }
  EXPECT_EQ(WireToStatusCode(200), common::StatusCode::kInternal);
}

TEST(ProtocolTest, DecodeRequestRejectsTrailingBytes) {
  std::string payload = EncodeRequest(MakeRequest()) + "x";
  Request decoded;
  EXPECT_TRUE(DecodeRequest(payload, &decoded).IsInvalidArgument());
}

TEST(ProtocolTest, DecodeRequestRejectsTruncation) {
  std::string payload = EncodeRequest(MakeRequest());
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    Request decoded;
    EXPECT_TRUE(DecodeRequest(payload.substr(0, cut), &decoded)
                    .IsInvalidArgument())
        << "cut at " << cut;
  }
}

TEST(ProtocolTest, DecodeRequestRejectsUnknownOpAndBadRequirement) {
  Request request = MakeRequest();
  std::string payload = EncodeRequest(request);
  payload[0] = 99;  // op byte
  Request decoded;
  EXPECT_TRUE(DecodeRequest(payload, &decoded).IsInvalidArgument());

  request.requirement.c = std::numeric_limits<double>::quiet_NaN();
  EXPECT_TRUE(
      DecodeRequest(EncodeRequest(request), &decoded).IsInvalidArgument());

  request.requirement.c = 2.0;
  request.requirement.ell = -1;
  EXPECT_TRUE(
      DecodeRequest(EncodeRequest(request), &decoded).IsInvalidArgument());
}

TEST(ProtocolTest, FrameHeaderRejectsZeroAndOversizedLength) {
  std::string zero(kFrameHeaderBytes, '\0');
  EXPECT_TRUE(DecodeFrameHeader(zero.data()).status().IsInvalidArgument());

  std::string frame = EncodeFrame("hi");
  frame[3] = '\x7f';  // length high byte -> way past kMaxFrameBytes
  EXPECT_TRUE(DecodeFrameHeader(frame.data()).status().IsInvalidArgument());
}

TEST(ProtocolTest, FrameRoundtrip) {
  std::string payload = EncodeResponse(MakeResponse());
  std::string frame = EncodeFrame(payload);
  ASSERT_EQ(frame.size(), kFrameHeaderBytes + payload.size());
  std::string parsed;
  ASSERT_TRUE(ParseFrameBuffer(frame, &parsed).ok());
  EXPECT_EQ(parsed, payload);
}

TEST(ProtocolTest, CorruptionCorpusEveryByteFlipIsDetected) {
  // The fail-loud contract: flip any single byte anywhere in a frame
  // (header, checksum, payload) and the receiver must reject it typed —
  // never deliver a misparsed message. This is what the checksum buys:
  // without it a flipped member-id byte would decode "successfully".
  std::string payload = EncodeResponse(MakeResponse());
  std::string frame = EncodeFrame(payload);
  for (size_t pos = 0; pos < frame.size(); ++pos) {
    for (uint8_t mask : {0x01, 0x80, 0x5A}) {
      std::string corrupted = frame;
      corrupted[pos] = static_cast<char>(corrupted[pos] ^ mask);
      std::string parsed;
      common::Status status = ParseFrameBuffer(corrupted, &parsed);
      EXPECT_FALSE(status.ok())
          << "flip mask 0x" << std::hex << static_cast<int>(mask)
          << " at byte " << std::dec << pos << " was not detected";
    }
  }
}

TEST(ProtocolTest, TruncationCorpusEveryPrefixIsDetected) {
  std::string frame = EncodeFrame(EncodeResponse(MakeResponse()));
  for (size_t cut = 0; cut < frame.size(); ++cut) {
    std::string parsed;
    EXPECT_FALSE(ParseFrameBuffer(frame.substr(0, cut), &parsed).ok())
        << "prefix of " << cut << " bytes was not detected";
  }
}

TEST(ProtocolTest, DecodeResponseRejectsAbsurdMemberCount) {
  Response response = MakeResponse();
  std::string payload = EncodeResponse(response);
  // The member-count field sits after request_id (8), status code (1),
  // and status message (4 + len). Claim 2^31 members.
  size_t count_offset = 8 + 1 + 4 + response.status.message().size();
  payload[count_offset + 3] = '\x80';
  Response decoded;
  EXPECT_TRUE(DecodeResponse(payload, &decoded).IsInvalidArgument());
}

}  // namespace
}  // namespace tokenmagic::rpc
