// Negative-path transport coverage against a hand-rolled fake server:
// the real daemon's fault injector perturbs responses it *writes*, but
// a server can also die partway through a frame or before answering at
// all. The client must classify both as typed IoError and reconnect on
// retry — never hang, never misparse the torn bytes.
#include <unistd.h>

#include <string>
#include <thread>

#include "common/strings.h"
#include "gtest/gtest.h"
#include "rpc/client.h"
#include "rpc/protocol.h"
#include "rpc/socket_io.h"

namespace tokenmagic::rpc {
namespace {

std::string TestSocketPath(const char* name) {
  return common::StrFormat("/tmp/tm_rpc_%d_%s.sock",
                           static_cast<int>(getpid()), name);
}

/// Reads one request on `conn` and answers it with a well-formed Ping
/// response carrying `message`.
void AnswerPing(const Fd& conn, const std::string& message) {
  std::string payload;
  ASSERT_TRUE(ReadFrame(conn, &payload).ok());
  Request request;
  ASSERT_TRUE(DecodeRequest(payload, &request).ok());
  Response response;
  response.request_id = request.request_id;
  response.status = common::Status(common::StatusCode::kOk, message);
  ASSERT_TRUE(WriteFrame(conn, EncodeResponse(response)).ok());
}

TEST(ClientNegativeTest, ReconnectsWhenServerDiesMidFrame) {
  std::string path = TestSocketPath("midframe");
  auto listener = ListenUnix(path);
  ASSERT_TRUE(listener.ok());

  std::thread fake([&] {
    // Connection 1: read the request, then start a frame whose header
    // promises 32 payload bytes, deliver only 10, and die. The client's
    // body read hits eof mid-frame.
    auto conn = Accept(listener.value());
    ASSERT_TRUE(conn.ok());
    std::string payload;
    ASSERT_TRUE(ReadFrame(conn.value(), &payload).ok());
    std::string torn("\x20\x00\x00\x00", 4);  // len = 32
    torn += std::string(8, '\x11');           // checksum (never checked)
    torn += std::string(10, 'x');             // 10 of the 32 body bytes
    ASSERT_TRUE(WriteAll(conn.value(), torn).ok());
    conn.value().Close();

    // Connection 2: the retried request gets a proper answer.
    auto conn2 = Accept(listener.value());
    ASSERT_TRUE(conn2.ok());
    AnswerPing(conn2.value(), "recovered");
  });

  ClientOptions options;
  options.retry.max_attempts = 3;
  options.recv_timeout_millis = 5000;
  auto client = Client::Connect(path, options);
  ASSERT_TRUE(client.ok());
  auto pong = client->Ping();
  fake.join();
  ASSERT_TRUE(pong.ok()) << pong.status().ToString();
  EXPECT_EQ(pong.value(), "recovered");
  EXPECT_TRUE(client->connected());
}

TEST(ClientNegativeTest, ReconnectsWhenServerDiesBeforeAnswering) {
  std::string path = TestSocketPath("noanswer");
  auto listener = ListenUnix(path);
  ASSERT_TRUE(listener.ok());

  std::thread fake([&] {
    // Connection 1: swallow the request and close without a byte —
    // clean eof at a frame boundary, still a transport failure for a
    // request awaiting its response.
    auto conn = Accept(listener.value());
    ASSERT_TRUE(conn.ok());
    std::string payload;
    ASSERT_TRUE(ReadFrame(conn.value(), &payload).ok());
    conn.value().Close();

    auto conn2 = Accept(listener.value());
    ASSERT_TRUE(conn2.ok());
    AnswerPing(conn2.value(), "second try");
  });

  ClientOptions options;
  options.retry.max_attempts = 3;
  options.recv_timeout_millis = 5000;
  auto client = Client::Connect(path, options);
  ASSERT_TRUE(client.ok());
  auto pong = client->Ping();
  fake.join();
  ASSERT_TRUE(pong.ok()) << pong.status().ToString();
  EXPECT_EQ(pong.value(), "second try");
}

TEST(ClientNegativeTest, ExhaustedRetriesSurfaceTypedIoError) {
  std::string path = TestSocketPath("alwaysdies");
  auto listener = ListenUnix(path);
  ASSERT_TRUE(listener.ok());

  std::thread fake([&] {
    // Every connection dies mid-frame; the client must give up with a
    // typed transport error after its budget, not loop forever.
    for (int i = 0; i < 2; ++i) {
      auto conn = Accept(listener.value());
      ASSERT_TRUE(conn.ok());
      std::string payload;
      ASSERT_TRUE(ReadFrame(conn.value(), &payload).ok());
      ASSERT_TRUE(WriteAll(conn.value(), std::string("\x08\x00", 2)).ok());
      conn.value().Close();
    }
  });

  ClientOptions options;
  options.retry.max_attempts = 2;
  options.recv_timeout_millis = 5000;
  auto client = Client::Connect(path, options);
  ASSERT_TRUE(client.ok());
  auto pong = client->Ping();
  fake.join();
  ASSERT_FALSE(pong.ok());
  EXPECT_TRUE(pong.status().IsIoError()) << pong.status().ToString();
}

}  // namespace
}  // namespace tokenmagic::rpc
