// End-to-end daemon behavior over real AF_UNIX sockets: valid rings,
// typed error verdicts, deadline propagation, overload shedding, and
// client recovery from injected transport faults.
#include "rpc/server.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/strings.h"
#include "gtest/gtest.h"
#include "node/fault_injection.h"
#include "rpc/client.h"
#include "rpc/testbed.h"

namespace tokenmagic::rpc {
namespace {

std::string TestSocketPath(const char* name) {
  return common::StrFormat("/tmp/tm_rpc_%d_%s.sock",
                           static_cast<int>(getpid()), name);
}

TestbedConfig SmallTestbed() {
  TestbedConfig config;
  config.num_wallets = 6;
  config.tokens_per_wallet = 4;
  config.cluster_size = 2;
  config.spend_rounds = 1;
  config.seed = 7;
  return config;
}

/// Spins (bounded) until `pred` holds. Tests synchronize on observable
/// server counters instead of fixed sleeps, so they cannot flake on a
/// slow machine — the predicate either becomes true or the test fails
/// loudly after the cap.
template <typename Pred>
[[nodiscard]] bool WaitUntil(Pred pred) {
  for (int i = 0; i < 5000; ++i) {
    if (pred()) return true;
    // tm-lint: allow(test-sleep, bounded poll interval under a predicate)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return false;
}

TEST(ServerTest, ServesValidRingsForEveryTarget) {
  Testbed testbed = BuildTestbed(SmallTestbed());
  ServerConfig config;
  config.socket_path = TestSocketPath("rings");
  config.workers = 2;
  Server server(testbed.node.get(), config);
  ASSERT_TRUE(server.Start().ok());

  auto client = Client::Connect(config.socket_path);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  size_t served_ok = 0;
  for (chain::TokenId target : testbed.targets) {
    auto response = client->Select(target, {2.0, 2});
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    if (!response->status.ok()) continue;  // unsatisfiable targets exist
    ++served_ok;
    // A served ring must contain its target and be sorted ascending.
    EXPECT_TRUE(std::is_sorted(response->members.begin(),
                               response->members.end()));
    EXPECT_TRUE(std::find(response->members.begin(),
                          response->members.end(),
                          target) != response->members.end());
    EXPECT_GE(response->members.size(), 2u);
  }
  EXPECT_GT(served_ok, 0u);
  server.Stop();
}

TEST(ServerTest, PingAndStatsControlOps) {
  Testbed testbed = BuildTestbed(SmallTestbed());
  ServerConfig config;
  config.socket_path = TestSocketPath("control");
  Server server(testbed.node.get(), config);
  ASSERT_TRUE(server.Start().ok());

  auto client = Client::Connect(config.socket_path);
  ASSERT_TRUE(client.ok());
  auto ping = client->Ping();
  ASSERT_TRUE(ping.ok());
  EXPECT_EQ(ping.value(),
            common::StrFormat(
                "%zu", testbed.node->blockchain().token_count()));

  ASSERT_TRUE(client->Select(testbed.targets.front(), {2.0, 2}).ok());
  auto stats = client->Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_NE(stats->find("\"admitted\""), std::string::npos);
  EXPECT_NE(stats->find("\"latency_micros\""), std::string::npos);
  server.Stop();
}

TEST(ServerTest, UnknownTargetAnswersInvalidArgument) {
  Testbed testbed = BuildTestbed(SmallTestbed());
  ServerConfig config;
  config.socket_path = TestSocketPath("badtarget");
  Server server(testbed.node.get(), config);
  ASSERT_TRUE(server.Start().ok());

  auto client = Client::Connect(config.socket_path);
  ASSERT_TRUE(client.ok());
  chain::TokenId bogus =
      testbed.node->blockchain().token_count() + 1000;
  auto response = client->Select(bogus, {2.0, 2});
  ASSERT_TRUE(response.ok());
  EXPECT_TRUE(response->status.IsInvalidArgument());
  server.Stop();
}

TEST(ServerTest, ExhaustedIterationBudgetAnswersTimeout) {
  Testbed testbed = BuildTestbed(SmallTestbed());
  ServerConfig config;
  config.socket_path = TestSocketPath("budget");
  Server server(testbed.node.get(), config);
  ASSERT_TRUE(server.Start().ok());

  auto client = Client::Connect(config.socket_path);
  ASSERT_TRUE(client.ok());
  // One iteration cannot build a 6-HT ring (every greedy step adds one
  // RS, and no testbed RS spans six HT clusters), so the budget expires
  // mid-stage and every later stage sees it already spent. The verdict
  // must be a typed Timeout, never a silent partial ring.
  auto response = client->Select(testbed.targets.front(), {2.0, 6},
                                 /*deadline_millis=*/1000,
                                 /*iteration_budget=*/1);
  ASSERT_TRUE(response.ok());
  EXPECT_TRUE(response->status.IsTimeout())
      << response->status.ToString();
  server.Stop();
}

TEST(ServerTest, QueueWaitCountsAgainstDeadline) {
  // Deadline propagation: the client budget is end-to-end, so time
  // spent waiting in the admission queue comes off the selection
  // budget. With an injected ManualClock the wait is simulated
  // deterministically: pin the single worker in a delayed write, queue
  // a request, advance the clock past its whole budget, and the worker
  // must answer Timeout without doing any selection work.
  Testbed testbed = BuildTestbed(SmallTestbed());
  common::ManualClock clock;
  node::FaultInjector faults(5);
  ServerConfig config;
  config.socket_path = TestSocketPath("queuewait");
  config.workers = 1;
  config.clock = &clock;
  config.faults = &faults;
  Server server(testbed.node.get(), config);
  ASSERT_TRUE(server.Start().ok());

  faults.ArmTransportFaults(
      1, {node::FaultInjector::TransportFault::kDelayResponse},
      /*delay_millis=*/200);
  auto pinned = Client::Connect(config.socket_path);
  ASSERT_TRUE(pinned.ok());
  std::thread pinned_call([&] {
    auto response = pinned->Select(testbed.targets.front(), {2.0, 2});
    EXPECT_TRUE(response.ok());
  });
  // Wait until the worker has picked the pinned request up (queue-wait
  // is recorded at pickup) and entered the delayed write, then queue a
  // second request and advance time past any budget it could carry.
  ASSERT_TRUE(WaitUntil(
      [&] { return server.StatsSnapshot().queue_wait_micros.count() >= 1; }));
  auto waiter = Client::Connect(config.socket_path);
  ASSERT_TRUE(waiter.ok());
  std::thread waiter_call([&] {
    auto response =
        waiter->Select(testbed.targets.back(), {2.0, 2}, 500);
    ASSERT_TRUE(response.ok());
    EXPECT_TRUE(response->status.IsTimeout())
        << response->status.ToString();
    EXPECT_NE(response->status.message().find("admission queue"),
              std::string::npos);
  });
  // The waiter is admitted by the reader thread even while the single
  // worker is pinned; only then is the clock advanced.
  ASSERT_TRUE(
      WaitUntil([&] { return server.StatsSnapshot().admitted >= 2; }));
  clock.AdvanceSeconds(10.0);
  pinned_call.join();
  waiter_call.join();
  EXPECT_EQ(server.StatsSnapshot().timeouts, 1u);
  server.Stop();
}

TEST(ServerTest, MalformedPayloadAnsweredTypedThenConnectionDropped) {
  Testbed testbed = BuildTestbed(SmallTestbed());
  ServerConfig config;
  config.socket_path = TestSocketPath("malformed");
  Server server(testbed.node.get(), config);
  ASSERT_TRUE(server.Start().ok());

  auto fd = ConnectUnix(config.socket_path);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(SetRecvTimeout(fd.value(), 5000).ok());
  // A well-framed but garbage payload: answered InvalidArgument, then
  // the server tears the connection down (the stream may be desynced).
  ASSERT_TRUE(WriteFrame(fd.value(), "garbage payload").ok());
  std::string payload;
  ASSERT_TRUE(ReadFrame(fd.value(), &payload).ok());
  Response response;
  ASSERT_TRUE(DecodeResponse(payload, &response).ok());
  EXPECT_TRUE(response.status.IsInvalidArgument());
  // Next read observes eof: connection closed by the server.
  std::string next;
  EXPECT_TRUE(ReadFrame(fd.value(), &next).IsIoError());

  EXPECT_EQ(server.StatsSnapshot().decode_errors, 1u);
  server.Stop();
}

TEST(ServerTest, OverloadShedsTypedOverloadedResponses) {
  Testbed testbed = BuildTestbed(SmallTestbed());
  node::FaultInjector faults(1);
  ServerConfig config;
  config.socket_path = TestSocketPath("overload");
  config.workers = 1;
  config.queue_capacity = 2;
  config.faults = &faults;
  Server server(testbed.node.get(), config);
  ASSERT_TRUE(server.Start().ok());

  // Pin the single worker inside a delayed response write, then flood
  // the 2-slot queue from a second connection: everything past the
  // queue capacity must shed with a typed Overloaded, immediately.
  faults.ArmTransportFaults(
      1, {node::FaultInjector::TransportFault::kDelayResponse},
      /*delay_millis=*/300);
  auto pinned = Client::Connect(config.socket_path);
  ASSERT_TRUE(pinned.ok());
  std::thread pinned_call([&] {
    auto response = pinned->Select(testbed.targets.front(), {2.0, 2});
    EXPECT_TRUE(response.ok());
  });

  auto flood = ConnectUnix(config.socket_path);
  ASSERT_TRUE(flood.ok());
  ASSERT_TRUE(SetRecvTimeout(flood.value(), 5000).ok());
  // Wait until the worker has picked up the pinned request (queue-wait
  // is recorded at pickup) so the flood really races an occupied worker.
  ASSERT_TRUE(WaitUntil(
      [&] { return server.StatsSnapshot().queue_wait_micros.count() >= 1; }));
  constexpr int kFlood = 10;
  for (int i = 0; i < kFlood; ++i) {
    Request request;
    request.op = Op::kSelect;
    request.request_id = 100 + i;
    request.target = testbed.targets.front();
    request.requirement = {2.0, 2};
    ASSERT_TRUE(WriteFrame(flood.value(), EncodeRequest(request)).ok());
  }
  int ok = 0, overloaded = 0, timed_out = 0, other = 0;
  for (int i = 0; i < kFlood; ++i) {
    std::string payload;
    if (!ReadFrame(flood.value(), &payload).ok()) break;
    Response response;
    if (!DecodeResponse(payload, &response).ok()) break;
    if (response.status.ok()) {
      ++ok;
    } else if (response.status.IsResourceExhausted()) {
      ++overloaded;
    } else if (response.status.IsTimeout()) {
      // Queued behind the pinned worker long enough to spend its whole
      // budget waiting: deadline propagation answering before work.
      ++timed_out;
    } else {
      ADD_FAILURE() << "unexpected verdict: "
                    << response.status.ToString();
      ++other;
    }
  }
  pinned_call.join();
  EXPECT_EQ(ok + overloaded + timed_out + other, kFlood);
  // At most queue_capacity requests fit behind the pinned worker; the
  // rest must have shed immediately with a typed Overloaded.
  EXPECT_GE(overloaded,
            kFlood - static_cast<int>(config.queue_capacity) - 1);
  EXPECT_EQ(server.StatsSnapshot().shed_overloaded,
            static_cast<uint64_t>(overloaded));
  server.Stop();
}

TEST(ServerTest, ClientSkipsDuplicatedResponses) {
  Testbed testbed = BuildTestbed(SmallTestbed());
  node::FaultInjector faults(2);
  ServerConfig config;
  config.socket_path = TestSocketPath("dup");
  config.faults = &faults;
  Server server(testbed.node.get(), config);
  ASSERT_TRUE(server.Start().ok());

  auto client = Client::Connect(config.socket_path);
  ASSERT_TRUE(client.ok());
  faults.ArmTransportFaults(
      1, {node::FaultInjector::TransportFault::kDuplicateResponse});
  auto first = client->Select(testbed.targets.front(), {2.0, 2});
  ASSERT_TRUE(first.ok());
  // The duplicate of the first response is still buffered; the next
  // call must skip it (stale id) and find its own response.
  auto second = client->Select(testbed.targets.back(), {2.0, 2});
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(faults.transport_faults_injected(), 1u);
  server.Stop();
}

TEST(ServerTest, ClientRecoversFromDroppedConnectionViaRetry) {
  Testbed testbed = BuildTestbed(SmallTestbed());
  node::FaultInjector faults(3);
  ServerConfig config;
  config.socket_path = TestSocketPath("drop");
  config.faults = &faults;
  Server server(testbed.node.get(), config);
  ASSERT_TRUE(server.Start().ok());

  ClientOptions options;
  options.retry.max_attempts = 3;
  auto client = Client::Connect(config.socket_path, options);
  ASSERT_TRUE(client.ok());
  faults.ArmTransportFaults(
      1, {node::FaultInjector::TransportFault::kDropConnection});
  auto response = client->Select(testbed.targets.front(), {2.0, 2});
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_TRUE(client->connected());
  server.Stop();
}

TEST(ServerTest, ClientRecoversFromCorruptedFrameViaRetry) {
  Testbed testbed = BuildTestbed(SmallTestbed());
  node::FaultInjector faults(4);
  ServerConfig config;
  config.socket_path = TestSocketPath("corrupt");
  config.faults = &faults;
  Server server(testbed.node.get(), config);
  ASSERT_TRUE(server.Start().ok());

  ClientOptions options;
  options.retry.max_attempts = 3;
  options.recv_timeout_millis = 1000;
  auto client = Client::Connect(config.socket_path, options);
  ASSERT_TRUE(client.ok());
  faults.ArmTransportFaults(
      1, {node::FaultInjector::TransportFault::kCorruptFrame});
  // The corrupted response is detected (checksum / decode), the client
  // reconnects and the retry succeeds — never a misparsed ring.
  auto response = client->Select(testbed.targets.front(), {2.0, 2});
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_TRUE(response->status.ok()) << response->status.ToString();
  server.Stop();
}

TEST(ServerTest, FaultInjectedSoakEveryRequestResolvesTyped) {
  Testbed testbed = BuildTestbed(SmallTestbed());
  node::FaultInjector faults(99);
  ServerConfig config;
  config.socket_path = TestSocketPath("soak");
  config.workers = 2;
  config.queue_capacity = 16;
  config.faults = &faults;
  Server server(testbed.node.get(), config);
  ASSERT_TRUE(server.Start().ok());
  faults.ArmTransportFaultRate(0.05);  // all five families

  constexpr int kThreads = 3;
  constexpr int kPerThread = 60;
  std::atomic<int> resolved{0};
  std::atomic<int> transport_failures{0};
  std::vector<std::thread> drivers;
  for (int t = 0; t < kThreads; ++t) {
    drivers.emplace_back([&, t] {
      ClientOptions options;
      options.retry.max_attempts = 4;
      options.recv_timeout_millis = 1000;
      auto client = Client::Connect(config.socket_path, options);
      ASSERT_TRUE(client.ok());
      for (int i = 0; i < kPerThread; ++i) {
        chain::TokenId target =
            testbed.targets[(t * kPerThread + i) % testbed.targets.size()];
        auto response = client->Select(target, {2.0, 2}, 500);
        // Typed resolution either way: a Response verdict, or a typed
        // transport error after retries (never a hang, never a crash).
        if (response.ok()) {
          resolved.fetch_add(1);
        } else {
          ASSERT_TRUE(response.status().IsIoError() ||
                      response.status().IsTimeout())
              << response.status().ToString();
          transport_failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : drivers) t.join();
  EXPECT_EQ(resolved.load() + transport_failures.load(),
            kThreads * kPerThread);
  // The vast majority must resolve despite injected faults.
  EXPECT_GT(resolved.load(), kThreads * kPerThread * 8 / 10);
  EXPECT_GT(faults.transport_faults_injected(), 0u);
  server.Stop();
}

}  // namespace
}  // namespace tokenmagic::rpc
