// Graceful-shutdown regression: Stop() while clients are mid-flight
// must (a) complete every in-flight selection, (b) answer everything
// still queued with a typed Cancelled, (c) never silently drop an
// admitted request, and (d) join every thread. Runs in the
// `concurrency` ctest label so the TSan CI lane exercises the drain
// under the race detector.
#include <unistd.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/strings.h"
#include "gtest/gtest.h"
#include "rpc/client.h"
#include "rpc/server.h"
#include "rpc/testbed.h"

namespace tokenmagic::rpc {
namespace {

std::string TestSocketPath(const char* name) {
  return common::StrFormat("/tmp/tm_rpc_%d_%s.sock",
                           static_cast<int>(getpid()), name);
}

TEST(ShutdownTest, StopWithoutTrafficJoinsCleanly) {
  Testbed testbed = BuildTestbed({});
  ServerConfig config;
  config.socket_path = TestSocketPath("idle");
  config.workers = 3;
  Server server(testbed.node.get(), config);
  ASSERT_TRUE(server.Start().ok());
  server.Stop();
  server.Stop();  // idempotent
  // The socket is gone: connects must fail, not hang.
  EXPECT_FALSE(ConnectUnix(config.socket_path).ok());
}

TEST(ShutdownTest, DestructorStopsARunningServer) {
  Testbed testbed = BuildTestbed({});
  ServerConfig config;
  config.socket_path = TestSocketPath("dtor");
  {
    Server server(testbed.node.get(), config);
    ASSERT_TRUE(server.Start().ok());
    auto client = Client::Connect(config.socket_path);
    ASSERT_TRUE(client.ok());
    ASSERT_TRUE(client->Ping().ok());
  }  // ~Server must drain and join, not crash or hang
  EXPECT_FALSE(ConnectUnix(config.socket_path).ok());
}

TEST(ShutdownTest, DrainResolvesEveryIssuedRequestTyped) {
  Testbed testbed = BuildTestbed({});
  ServerConfig config;
  config.socket_path = TestSocketPath("drain");
  config.workers = 2;
  config.queue_capacity = 8;
  Server server(testbed.node.get(), config);
  ASSERT_TRUE(server.Start().ok());

  constexpr int kThreads = 6;
  std::atomic<bool> stop_flag{false};
  std::atomic<int> issued{0};
  std::atomic<int> resolved_verdict{0};  // got a Response (any status)
  std::atomic<int> resolved_transport{0};  // typed transport error
  std::atomic<int> got_cancelled{0};

  std::vector<std::thread> drivers;
  for (int t = 0; t < kThreads; ++t) {
    drivers.emplace_back([&, t] {
      ClientOptions options;
      options.retry.max_attempts = 1;  // no retries: count raw verdicts
      options.recv_timeout_millis = 5000;
      auto client = Client::Connect(config.socket_path, options);
      if (!client.ok()) return;
      for (int i = 0; i < 10000 && !stop_flag.load(); ++i) {
        chain::TokenId target =
            testbed.targets[(t + i) % testbed.targets.size()];
        issued.fetch_add(1);
        auto response = client->Select(target, {2.0, 2}, 500);
        if (response.ok()) {
          resolved_verdict.fetch_add(1);
          if (response->status.IsCancelled()) got_cancelled.fetch_add(1);
          // During a drain the only legal verdicts are the typed ones.
          EXPECT_TRUE(response->status.ok() ||
                      response->status.IsCancelled() ||
                      response->status.IsTimeout() ||
                      response->status.IsUnsatisfiable() ||
                      response->status.IsResourceExhausted())
              << response->status.ToString();
        } else {
          // Torn connection at drain: typed transport error, then done.
          EXPECT_TRUE(response.status().IsIoError() ||
                      response.status().IsTimeout())
              << response.status().ToString();
          resolved_transport.fetch_add(1);
          return;
        }
      }
    });
  }

  // Wait for a fixed amount of admitted traffic (observable counter,
  // not a wall-clock sleep), then pull the plug mid-flight.
  for (int spin = 0;
       spin < 5000 && server.StatsSnapshot().admitted < 32; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(server.StatsSnapshot().admitted, 32u);
  server.Stop();
  stop_flag.store(true);
  for (auto& t : drivers) t.join();

  // Every issued request resolved one way or the other — nothing hung,
  // nothing vanished.
  EXPECT_EQ(resolved_verdict.load() + resolved_transport.load(),
            issued.load());

  // Server-side conservation: every admitted request was resolved by a
  // worker with exactly one typed outcome. Reader-side sheds (Overloaded
  // before admission, Cancelled after the queue closed) add on top.
  ServerStats stats = server.StatsSnapshot();
  uint64_t outcomes = stats.ok + stats.timeouts + stats.unsatisfiable +
                      stats.invalid_argument + stats.internal_errors +
                      stats.cancelled + stats.shed_overloaded;
  EXPECT_GE(outcomes, stats.admitted);
  EXPECT_EQ(stats.internal_errors, 0u);
  // The drain happened mid-flight, so the server processed real work.
  EXPECT_GT(stats.admitted, 0u);
}

}  // namespace
}  // namespace tokenmagic::rpc
