// Graceful-shutdown regression: Stop() while clients are mid-flight
// must (a) complete every in-flight selection, (b) answer everything
// still queued with a typed Cancelled, (c) never silently drop an
// admitted request, and (d) join every thread. Runs in the
// `concurrency` ctest label so the TSan CI lane exercises the drain
// under the race detector.
#include <unistd.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/strings.h"
#include "gtest/gtest.h"
#include "rpc/client.h"
#include "rpc/server.h"
#include "rpc/testbed.h"

namespace tokenmagic::rpc {
namespace {

std::string TestSocketPath(const char* name) {
  return common::StrFormat("/tmp/tm_rpc_%d_%s.sock",
                           static_cast<int>(getpid()), name);
}

TEST(ShutdownTest, StopWithoutTrafficJoinsCleanly) {
  Testbed testbed = BuildTestbed({});
  ServerConfig config;
  config.socket_path = TestSocketPath("idle");
  config.workers = 3;
  Server server(testbed.node.get(), config);
  ASSERT_TRUE(server.Start().ok());
  server.Stop();
  server.Stop();  // idempotent
  // The socket is gone: connects must fail, not hang.
  EXPECT_FALSE(ConnectUnix(config.socket_path).ok());
}

TEST(ShutdownTest, DestructorStopsARunningServer) {
  Testbed testbed = BuildTestbed({});
  ServerConfig config;
  config.socket_path = TestSocketPath("dtor");
  {
    Server server(testbed.node.get(), config);
    ASSERT_TRUE(server.Start().ok());
    auto client = Client::Connect(config.socket_path);
    ASSERT_TRUE(client.ok());
    ASSERT_TRUE(client->Ping().ok());
  }  // ~Server must drain and join, not crash or hang
  EXPECT_FALSE(ConnectUnix(config.socket_path).ok());
}

TEST(ShutdownTest, DrainResolvesEveryIssuedRequestTyped) {
  Testbed testbed = BuildTestbed({});
  ServerConfig config;
  config.socket_path = TestSocketPath("drain");
  config.workers = 2;
  config.queue_capacity = 8;
  Server server(testbed.node.get(), config);
  ASSERT_TRUE(server.Start().ok());

  constexpr int kThreads = 6;
  std::atomic<bool> stop_flag{false};
  std::atomic<int> issued{0};
  std::atomic<int> resolved_verdict{0};  // got a Response (any status)
  std::atomic<int> resolved_transport{0};  // typed transport error
  std::atomic<int> got_cancelled{0};

  std::vector<std::thread> drivers;
  for (int t = 0; t < kThreads; ++t) {
    drivers.emplace_back([&, t] {
      ClientOptions options;
      options.retry.max_attempts = 1;  // no retries: count raw verdicts
      options.recv_timeout_millis = 5000;
      auto client = Client::Connect(config.socket_path, options);
      if (!client.ok()) return;
      for (int i = 0; i < 10000 && !stop_flag.load(); ++i) {
        chain::TokenId target =
            testbed.targets[(t + i) % testbed.targets.size()];
        issued.fetch_add(1);
        auto response = client->Select(target, {2.0, 2}, 500);
        if (response.ok()) {
          resolved_verdict.fetch_add(1);
          if (response->status.IsCancelled()) got_cancelled.fetch_add(1);
          // During a drain the only legal verdicts are the typed ones.
          EXPECT_TRUE(response->status.ok() ||
                      response->status.IsCancelled() ||
                      response->status.IsTimeout() ||
                      response->status.IsUnsatisfiable() ||
                      response->status.IsResourceExhausted())
              << response->status.ToString();
        } else {
          // Torn connection at drain: typed transport error, then done.
          EXPECT_TRUE(response.status().IsIoError() ||
                      response.status().IsTimeout())
              << response.status().ToString();
          resolved_transport.fetch_add(1);
          return;
        }
      }
    });
  }

  // Wait for a fixed amount of admitted traffic (observable counter,
  // not a wall-clock sleep), then pull the plug mid-flight.
  for (int spin = 0;
       spin < 5000 && server.StatsSnapshot().admitted < 32; ++spin) {
    // tm-lint: allow(test-sleep, bounded poll interval on a counter)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(server.StatsSnapshot().admitted, 32u);
  server.Stop();
  stop_flag.store(true);
  for (auto& t : drivers) t.join();

  // Every issued request resolved one way or the other — nothing hung,
  // nothing vanished.
  EXPECT_EQ(resolved_verdict.load() + resolved_transport.load(),
            issued.load());

  // Server-side conservation: every admitted request was resolved by a
  // worker with exactly one typed outcome. Reader-side sheds (Overloaded
  // before admission, Cancelled after the queue closed) add on top.
  ServerStats stats = server.StatsSnapshot();
  uint64_t outcomes = stats.ok + stats.timeouts + stats.unsatisfiable +
                      stats.invalid_argument + stats.internal_errors +
                      stats.cancelled + stats.shed_overloaded;
  EXPECT_GE(outcomes, stats.admitted);
  EXPECT_EQ(stats.internal_errors, 0u);
  // The drain happened mid-flight, so the server processed real work.
  EXPECT_GT(stats.admitted, 0u);
}

// Races Stop() against clients riding CallWithRetry's reconnect path:
// the server is yanked mid-flight and a replacement comes up on the
// same socket while every client is inside its retry loop. Under TSan
// this exercises Stop's teardown (listener close, connection close,
// worker join) concurrently with client-side Reconnect(). The contract:
// no call ever resolves untyped, and once the replacement is up the
// surviving retry budgets carry the clients over to it.
TEST(ShutdownTest, StopRacesCallWithRetryReconnect) {
  Testbed testbed = BuildTestbed({});
  ServerConfig config;
  config.socket_path = TestSocketPath("retry_race");
  config.workers = 2;
  config.queue_capacity = 8;

  auto server = std::make_unique<Server>(testbed.node.get(), config);
  ASSERT_TRUE(server->Start().ok());

  constexpr int kThreads = 4;
  std::atomic<bool> stop_flag{false};
  std::atomic<bool> restarted{false};
  std::atomic<int> resolved_after_restart{0};

  std::vector<std::thread> drivers;
  for (int t = 0; t < kThreads; ++t) {
    drivers.emplace_back([&, t] {
      ClientOptions options;
      options.retry.max_attempts = 5;  // reconnect across the restart
      options.recv_timeout_millis = 2000;
      auto client = Client::Connect(config.socket_path, options);
      if (!client.ok()) return;
      for (int i = 0; !stop_flag.load(); ++i) {
        chain::TokenId target =
            testbed.targets[(t + i) % testbed.targets.size()];
        auto response = client->Select(target, {2.0, 2}, 500);
        if (response.ok()) {
          if (restarted.load()) resolved_after_restart.fetch_add(1);
        } else {
          // All attempts torn mid-restart: typed transport error, and
          // the next loop iteration starts a fresh retry budget.
          EXPECT_TRUE(response.status().IsIoError() ||
                      response.status().IsTimeout())
              << response.status().ToString();
        }
      }
    });
  }

  // Let traffic flow (observable counter, not a wall-clock guess), then
  // yank the server out from under the retrying clients.
  for (int spin = 0;
       spin < 5000 && server->StatsSnapshot().admitted < 16; ++spin) {
    // tm-lint: allow(test-sleep, bounded poll interval on a counter)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(server->StatsSnapshot().admitted, 16u);
  server->Stop();
  server.reset();  // destructor teardown races the reconnects too

  Server replacement(testbed.node.get(), config);
  ASSERT_TRUE(replacement.Start().ok());
  restarted.store(true);

  // The reconnecting clients must find the replacement on their own:
  // wait on ITS admitted counter before declaring the handover done.
  for (int spin = 0;
       spin < 5000 && replacement.StatsSnapshot().admitted < 16; ++spin) {
    // tm-lint: allow(test-sleep, bounded poll interval on a counter)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(replacement.StatsSnapshot().admitted, 16u);

  stop_flag.store(true);
  for (auto& t : drivers) t.join();
  replacement.Stop();

  // The retry budgets carried live clients across the restart: calls
  // resolved transport-ok against the replacement.
  EXPECT_GT(resolved_after_restart.load(), 0);
}

}  // namespace
}  // namespace tokenmagic::rpc
