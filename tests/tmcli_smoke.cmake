# Drives tmcli through its whole surface; any non-zero exit fails the test.
file(MAKE_DIRECTORY ${WORKDIR})
foreach(args
    "gen-monero;--out;${WORKDIR}/data"
    "gen-synthetic;--out;${WORKDIR}/synth;--supers;10;--sigma;8"
    "stats;--data;${WORKDIR}/data"
    "select;--data;${WORKDIR}/data;--target;5;--algo;TM_P;--ell;20"
    "select;--data;${WORKDIR}/data;--target;5;--algo;TM_G;--ell;20"
    "attack;--data;${WORKDIR}/data"
    "report;--data;${WORKDIR}/data"
    "simulate;--rounds;2;--wallets;3")
  execute_process(COMMAND ${TMCLI} ${args} RESULT_VARIABLE code)
  if(NOT code EQUAL 0)
    message(FATAL_ERROR "tmcli ${args} failed with ${code}")
  endif()
endforeach()
