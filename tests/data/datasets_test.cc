#include <gtest/gtest.h>

#include "analysis/diversity.h"
#include "common/histogram.h"
#include "data/csv.h"
#include "data/monero_like.h"
#include "data/synthetic.h"

namespace tokenmagic::data {
namespace {

TEST(BuildOutputCountsTest, ExactTotals) {
  auto counts = BuildOutputCounts(285, 633);
  EXPECT_EQ(counts.size(), 285u);
  size_t sum = 0;
  for (uint32_t c : counts) sum += c;
  EXPECT_EQ(sum, 633u);
}

TEST(BuildOutputCountsTest, TwoOutputsIsTheMode) {
  auto counts = BuildOutputCounts(285, 633);
  common::Histogram h;
  for (uint32_t c : counts) h.Add(c);
  int64_t mode_count = h.CountOf(2);
  for (int64_t v : h.Values()) {
    if (v != 2) {
      EXPECT_GT(mode_count, h.CountOf(v));
    }
  }
}

TEST(BuildOutputCountsTest, SmallInstances) {
  auto counts = BuildOutputCounts(3, 3);
  EXPECT_EQ(counts.size(), 3u);
  size_t sum = 0;
  for (uint32_t c : counts) sum += c;
  EXPECT_EQ(sum, 3u);
  counts = BuildOutputCounts(2, 10);
  sum = 0;
  for (uint32_t c : counts) sum += c;
  EXPECT_EQ(sum, 10u);
}

TEST(MoneroLikeTest, ReproducesPublishedStatistics) {
  Dataset ds = MakeMoneroLikeTrace();
  EXPECT_EQ(ds.blockchain.block_count(), 32u);
  EXPECT_EQ(ds.blockchain.transaction_count(), 285u);
  EXPECT_EQ(ds.blockchain.token_count(), 633u);
  EXPECT_EQ(ds.history.size(), 57u);
  for (const auto& view : ds.history) {
    EXPECT_EQ(view.members.size(), 11u);
  }
  EXPECT_EQ(ds.fresh.size(), 6u);  // 633 - 57*11
  EXPECT_EQ(ds.universe.size(), 633u);
}

TEST(MoneroLikeTest, SuperRsPartitionIsDisjoint) {
  Dataset ds = MakeMoneroLikeTrace();
  std::set<chain::TokenId> seen;
  for (const auto& view : ds.history) {
    for (chain::TokenId t : view.members) {
      EXPECT_TRUE(seen.insert(t).second) << "token in two super RSs";
    }
  }
  for (chain::TokenId t : ds.fresh) {
    EXPECT_TRUE(seen.insert(t).second) << "fresh token also in a super RS";
  }
  EXPECT_EQ(seen.size(), 633u);
}

TEST(MoneroLikeTest, GroundTruthSpendsAreMembers) {
  Dataset ds = MakeMoneroLikeTrace();
  ASSERT_EQ(ds.ground_truth.size(), ds.history.size());
  for (size_t i = 0; i < ds.history.size(); ++i) {
    EXPECT_EQ(ds.ground_truth[i].rs, ds.history[i].id);
    EXPECT_TRUE(std::binary_search(ds.history[i].members.begin(),
                                   ds.history[i].members.end(),
                                   ds.ground_truth[i].token));
  }
}

TEST(MoneroLikeTest, DeterministicForFixedSeed) {
  Dataset a = MakeMoneroLikeTrace();
  Dataset b = MakeMoneroLikeTrace();
  ASSERT_EQ(a.history.size(), b.history.size());
  for (size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_EQ(a.history[i].members, b.history[i].members);
  }
  MoneroLikeParams other;
  other.seed = 777;
  Dataset c = MakeMoneroLikeTrace(other);
  bool any_diff = false;
  for (size_t i = 0; i < a.history.size(); ++i) {
    if (a.history[i].members != c.history[i].members) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(SyntheticTest, RespectsSizeParameters) {
  SyntheticParams params;
  params.num_super_rs = 20;
  params.super_size_min = 5;
  params.super_size_max = 9;
  params.num_fresh = 7;
  params.seed = 3;
  Dataset ds = MakeSyntheticDataset(params);
  EXPECT_EQ(ds.history.size(), 20u);
  for (const auto& view : ds.history) {
    EXPECT_GE(view.members.size(), 5u);
    EXPECT_LE(view.members.size(), 9u);
  }
  EXPECT_EQ(ds.fresh.size(), 7u);
  size_t total = ds.fresh.size();
  for (const auto& view : ds.history) total += view.members.size();
  EXPECT_EQ(ds.universe.size(), total);
}

TEST(SyntheticTest, LargerSigmaSpreadsHts) {
  SyntheticParams narrow;
  narrow.sigma = 8;
  narrow.seed = 9;
  SyntheticParams wide = narrow;
  wide.sigma = 16;
  Dataset n = MakeSyntheticDataset(narrow);
  Dataset w = MakeSyntheticDataset(wide);
  size_t hts_narrow = analysis::DistinctHtCount(n.universe, n.index);
  size_t hts_wide = analysis::DistinctHtCount(w.universe, w.index);
  EXPECT_GT(hts_wide, hts_narrow);
  // Peak HT frequency shrinks as sigma grows.
  auto fn = analysis::HtFrequencies(n.universe, n.index);
  auto fw = analysis::HtFrequencies(w.universe, w.index);
  EXPECT_GT(fn.front(), fw.front());
}

TEST(SyntheticTest, Sigma16PeakNearMoneroMaximum) {
  // Paper Section 7.1: sigma=16 with ~800 tokens puts roughly 16 tokens
  // in the heaviest HT (Monero's historical max). Allow a loose band.
  SyntheticParams params;
  params.sigma = 16;
  params.seed = 4;
  Dataset ds = MakeSyntheticDataset(params);
  auto freq = analysis::HtFrequencies(ds.universe, ds.index);
  EXPECT_GE(freq.front(), 10);
  EXPECT_LE(freq.front(), 30);
}

TEST(SyntheticTest, DeterministicPerSeed) {
  SyntheticParams params;
  params.seed = 5;
  Dataset a = MakeSyntheticDataset(params);
  Dataset b = MakeSyntheticDataset(params);
  EXPECT_EQ(a.universe.size(), b.universe.size());
  for (size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_EQ(a.history[i].members, b.history[i].members);
  }
}

TEST(DatasetTest, UnspentTokensExcludesGroundTruth) {
  Dataset ds = MakeMoneroLikeTrace();
  auto unspent = ds.UnspentTokens();
  EXPECT_EQ(unspent.size(), 633u - 57u);
  std::set<chain::TokenId> spent;
  for (const auto& pair : ds.ground_truth) spent.insert(pair.token);
  for (chain::TokenId t : unspent) EXPECT_EQ(spent.count(t), 0u);
}

TEST(CsvTest, TokensRoundTrip) {
  SyntheticParams params;
  params.num_super_rs = 5;
  params.num_fresh = 3;
  params.seed = 11;
  Dataset ds = MakeSyntheticDataset(params);
  std::string tokens_csv = TokensToCsv(ds);
  std::string rings_csv = RingsToCsv(ds);
  auto loaded = DatasetFromCsv(tokens_csv, rings_csv);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->universe.size(), ds.universe.size());
  EXPECT_EQ(loaded->history.size(), ds.history.size());
  EXPECT_EQ(loaded->fresh.size(), ds.fresh.size());
  // HT frequency profile is preserved exactly.
  EXPECT_EQ(analysis::HtFrequencies(loaded->universe, loaded->index),
            analysis::HtFrequencies(ds.universe, ds.index));
  // Per-ring HT profiles are preserved.
  for (size_t i = 0; i < ds.history.size(); ++i) {
    EXPECT_EQ(
        analysis::HtFrequencies(loaded->history[i].members, loaded->index),
        analysis::HtFrequencies(ds.history[i].members, ds.index));
  }
}

TEST(CsvTest, SaveLoadThroughFilesystem) {
  SyntheticParams params;
  params.num_super_rs = 3;
  params.num_fresh = 2;
  params.seed = 13;
  Dataset ds = MakeSyntheticDataset(params);
  std::string dir = ::testing::TempDir() + "/tm_csv_test";
  ASSERT_TRUE(SaveDataset(ds, dir).ok());
  auto loaded = LoadDataset(dir);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->universe.size(), ds.universe.size());
  EXPECT_EQ(loaded->history.size(), ds.history.size());
}

TEST(CsvTest, MalformedInputRejected) {
  EXPECT_FALSE(DatasetFromCsv("token_id,ht_id\n1\n", "h\n").ok());
  EXPECT_FALSE(DatasetFromCsv("token_id,ht_id\nx,y\n", "h\n").ok());
  EXPECT_FALSE(DatasetFromCsv("token_id,ht_id\n", "h\n").ok());  // empty
  // Ring referencing an unknown token.
  EXPECT_FALSE(DatasetFromCsv("token_id,ht_id\n1,1\n",
                              "rs_id,proposed_at,c,ell,members\n"
                              "0,0,1.0,1,1;2\n")
                   .ok());
}

TEST(CsvTest, LoadMissingDirectoryFails) {
  EXPECT_TRUE(LoadDataset("/nonexistent/path").status().code() ==
              common::StatusCode::kIoError);
}

}  // namespace
}  // namespace tokenmagic::data
