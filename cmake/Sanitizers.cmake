# Shared build hygiene for every TokenMagic target: warnings, -Werror,
# the TOKENMAGIC_SANITIZE matrix, and opt-in clang-tidy for the crypto and
# analysis layers. Everything is applied per target through
# tokenmagic_configure_target() so third-party code (GTest, benchmark) is
# never instrumented behind our back.
#
#   TOKENMAGIC_SANITIZE      comma-separated subset of
#                            {address, undefined, leak, thread, memory};
#                            e.g. -DTOKENMAGIC_SANITIZE=address,undefined
#   TOKENMAGIC_WERROR        treat warnings as errors
#   TOKENMAGIC_CLANG_TIDY    run clang-tidy (when found) on targets that
#                            request it (crypto, analysis, core, node, sim)
#   TOKENMAGIC_COVERAGE      clang source-based coverage instrumentation
#                            (-fprofile-instr-generate -fcoverage-mapping)
#                            for the llvm-cov CI lane
#
# Clang builds additionally get -Wthread-safety: the capability annotations
# in src/common/annotations.h (TM_GUARDED_BY et al.) are statically checked
# on every clang compile, and escalate to errors under TOKENMAGIC_WERROR.
# GCC has no thread-safety analysis, so the flag is compiler-gated; the
# annotations themselves compile away (see annotations.h).

include_guard(GLOBAL)

set(TOKENMAGIC_SANITIZE "" CACHE STRING
    "Comma-separated sanitizers: address,undefined,leak,thread,memory")
option(TOKENMAGIC_CLANG_TIDY
       "Run clang-tidy on annotated targets when available" OFF)
option(TOKENMAGIC_COVERAGE
       "Clang source-based coverage instrumentation (llvm-cov)" OFF)

if(TOKENMAGIC_COVERAGE AND NOT CMAKE_CXX_COMPILER_ID MATCHES "Clang")
  message(FATAL_ERROR
      "TOKENMAGIC_COVERAGE uses clang source-based coverage "
      "(-fprofile-instr-generate); current compiler is "
      "${CMAKE_CXX_COMPILER_ID}. For GCC use gcov directly.")
endif()

# ---------------------------------------------------------------------------
# Validate the requested sanitizer combination once, up front.
# ---------------------------------------------------------------------------
set(_tm_san_compile_flags "")
set(_tm_san_link_flags "")
if(TOKENMAGIC_SANITIZE)
  string(REPLACE "," ";" _tm_san_list "${TOKENMAGIC_SANITIZE}")
  set(_tm_san_known address undefined leak thread memory)
  foreach(_san IN LISTS _tm_san_list)
    if(NOT _san IN_LIST _tm_san_known)
      message(FATAL_ERROR
          "TOKENMAGIC_SANITIZE: unknown sanitizer '${_san}' "
          "(expected a comma-separated subset of: ${_tm_san_known})")
    endif()
  endforeach()

  # ASan/LSan and TSan own incompatible shadow memory layouts; MSan is
  # incompatible with all of them and needs an instrumented libc++ (clang).
  if("thread" IN_LIST _tm_san_list AND
     ("address" IN_LIST _tm_san_list OR "leak" IN_LIST _tm_san_list))
    message(FATAL_ERROR
        "TOKENMAGIC_SANITIZE: 'thread' cannot be combined with "
        "'address'/'leak'")
  endif()
  if("memory" IN_LIST _tm_san_list)
    list(LENGTH _tm_san_list _tm_san_count)
    if(NOT _tm_san_count EQUAL 1)
      message(FATAL_ERROR
          "TOKENMAGIC_SANITIZE: 'memory' cannot be combined with other "
          "sanitizers")
    endif()
    if(NOT CMAKE_CXX_COMPILER_ID MATCHES "Clang")
      message(FATAL_ERROR
          "TOKENMAGIC_SANITIZE=memory requires Clang "
          "(current compiler: ${CMAKE_CXX_COMPILER_ID})")
    endif()
  endif()

  string(REPLACE ";" "," _tm_san_csv "${_tm_san_list}")
  set(_tm_san_compile_flags
      -fsanitize=${_tm_san_csv}
      -fno-omit-frame-pointer
      -fno-sanitize-recover=all
      -g)
  set(_tm_san_link_flags -fsanitize=${_tm_san_csv})
  message(STATUS "TokenMagic: sanitizers enabled: ${_tm_san_csv}")
endif()

# ---------------------------------------------------------------------------
# Locate clang-tidy once; targets opt in via tokenmagic_configure_target(TIDY).
# ---------------------------------------------------------------------------
set(_tm_clang_tidy_cmd "")
if(TOKENMAGIC_CLANG_TIDY)
  find_program(TOKENMAGIC_CLANG_TIDY_EXE NAMES clang-tidy)
  if(TOKENMAGIC_CLANG_TIDY_EXE)
    set(_tm_clang_tidy_cmd
        "${TOKENMAGIC_CLANG_TIDY_EXE};--warnings-as-errors=*")
    message(STATUS "TokenMagic: clang-tidy: ${TOKENMAGIC_CLANG_TIDY_EXE}")
  else()
    message(WARNING
        "TOKENMAGIC_CLANG_TIDY=ON but clang-tidy was not found; skipping")
  endif()
endif()

# Applies the house build flags to `target`. Pass TIDY to additionally run
# clang-tidy on the target's sources when TOKENMAGIC_CLANG_TIDY is enabled.
function(tokenmagic_configure_target target)
  cmake_parse_arguments(ARG "TIDY" "" "" ${ARGN})

  target_compile_options(${target} PRIVATE -Wall -Wextra)
  # Clang statically checks the TM_* capability annotations on every build;
  # under -Werror an unguarded access to a TM_GUARDED_BY member fails the
  # compile. GCC ignores the attributes (annotations.h compiles them away).
  if(CMAKE_CXX_COMPILER_ID MATCHES "Clang")
    target_compile_options(${target} PRIVATE -Wthread-safety)
  endif()
  if(TOKENMAGIC_COVERAGE)
    target_compile_options(${target} PRIVATE
        -fprofile-instr-generate -fcoverage-mapping)
    target_link_options(${target} PRIVATE -fprofile-instr-generate)
  endif()
  # GCC 12+ -Wmaybe-uninitialized false-positives on std::variant/optional
  # members when destructors get inlined at -O2 (e.g. GCC PR105562); it fires
  # inside libstdc++ headers for Result<T> and cannot be fixed in our source.
  if(CMAKE_CXX_COMPILER_ID STREQUAL "GNU"
     AND CMAKE_CXX_COMPILER_VERSION VERSION_GREATER_EQUAL 12)
    target_compile_options(${target} PRIVATE -Wno-maybe-uninitialized)
  endif()
  if(TOKENMAGIC_WERROR)
    target_compile_options(${target} PRIVATE -Werror)
  endif()

  if(_tm_san_compile_flags)
    target_compile_options(${target} PRIVATE ${_tm_san_compile_flags})
    target_link_options(${target} PRIVATE ${_tm_san_link_flags})
  endif()

  if(ARG_TIDY AND _tm_clang_tidy_cmd)
    set_target_properties(${target} PROPERTIES
        CXX_CLANG_TIDY "${_tm_clang_tidy_cmd}")
  endif()
endfunction()
