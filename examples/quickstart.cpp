// Quickstart: build a chain, select diversity-aware mixins with
// TokenMagic, sign the spend with a linkable ring signature, verify it,
// and watch the double-spend guard fire.
//
//   $ ./quickstart
#include <cstdio>

#include "common/rng.h"
#include "core/progressive.h"
#include "core/token_magic.h"
#include "crypto/lsag.h"
#include "data/monero_like.h"

using namespace tokenmagic;

int main() {
  // 1. A blockchain: 3 blocks x 8 single-output transactions.
  chain::Blockchain bc;
  for (int b = 0; b < 3; ++b) bc.AddBlock(b, {1, 1, 1, 1, 1, 1, 1, 1});
  std::printf("chain: %zu blocks, %zu tokens\n", bc.block_count(),
              bc.token_count());

  // 2. The TokenMagic framework: lambda-batching + ledger + selectors.
  core::TokenMagicConfig config;
  config.lambda = 24;  // one batch for this toy chain
  core::TokenMagic tm(&bc, config);

  // 3. Every token has an owner keypair (one-time keys, Monero-style).
  common::Rng rng(7);
  std::vector<crypto::Keypair> keys;
  for (size_t i = 0; i < bc.token_count(); ++i) {
    keys.push_back(crypto::Keypair::Generate(&rng));
  }

  // 4. Spend token 5 under a recursive (2, 3)-diversity requirement.
  const chain::TokenId spend_token = 5;
  core::ProgressiveSelector selector;
  auto generated = tm.GenerateRs(spend_token, {2.0, 3}, selector, &rng);
  if (!generated.ok()) {
    std::printf("selection failed: %s\n",
                generated.status().ToString().c_str());
    return 1;
  }
  std::printf("selected RS #%llu with %zu members:",
              static_cast<unsigned long long>(generated->id),
              generated->members.size());
  for (auto t : generated->members) {
    std::printf(" t%llu", static_cast<unsigned long long>(t));
  }
  std::printf("\n");

  // 5. Sign with LSAG: the ring hides which member is spent.
  std::vector<crypto::Point> ring;
  size_t signer_index = 0;
  for (size_t i = 0; i < generated->members.size(); ++i) {
    ring.push_back(keys[generated->members[i]].pub);
    if (generated->members[i] == spend_token) signer_index = i;
  }
  auto sig = crypto::Lsag::Sign(ring, signer_index, keys[spend_token],
                                "pay 1 XTM to bob", &rng);
  if (!sig.ok()) {
    std::printf("signing failed: %s\n", sig.status().ToString().c_str());
    return 1;
  }
  std::printf("LSAG signature over ring of %zu keys: verify=%s\n",
              ring.size(),
              crypto::Lsag::Verify(*sig, "pay 1 XTM to bob") ? "OK" : "FAIL");

  // 6. The key image blocks a second spend of the same token.
  crypto::KeyImageRegistry registry;
  (void)registry.Register(sig->key_image);
  auto second = crypto::Lsag::Sign(ring, signer_index, keys[spend_token],
                                   "pay 1 XTM to carol", &rng);
  auto verdict = registry.Register(second->key_image);
  std::printf("double-spend attempt: %s\n", verdict.ToString().c_str());
  return 0;
}
