// Cryptocurrency wallet scenario: transaction fees are proportional to
// the ring size (the paper's core economic motivation), so a wallet
// wants the smallest ring that still resists chain-reaction analysis
// and the homogeneity attack. This example spends a series of tokens on
// the Monero-like trace and compares the fee bill across the four
// selection policies.
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "core/baselines.h"
#include "core/game_theoretic.h"
#include "core/progressive.h"
#include "data/monero_like.h"

using namespace tokenmagic;

namespace {

constexpr double kFeePerMember = 0.00031;  // XTM per ring member

struct Bill {
  size_t spends = 0;
  size_t total_members = 0;
  double fee() const { return kFeePerMember * total_members; }
};

Bill RunWallet(const data::Dataset& ds, const core::MixinSelector& selector,
               chain::DiversityRequirement req, uint64_t seed) {
  common::Rng rng(seed);
  core::SelectionInput input;
  input.universe = ds.universe;
  input.history = ds.history;
  input.requirement = req;
  input.index = &ds.index;

  Bill bill;
  auto unspent = ds.UnspentTokens();
  for (int spend = 0; spend < 20; ++spend) {
    input.target = unspent[rng.NextBounded(unspent.size())];
    auto result = selector.Select(input, &rng);
    if (!result.ok()) continue;
    ++bill.spends;
    bill.total_members += result->members.size();
  }
  return bill;
}

}  // namespace

int main() {
  data::Dataset ds = data::MakeMoneroLikeTrace();
  chain::DiversityRequirement req{0.6, 20};
  std::printf("wallet: 20 spends on the Monero-like trace, "
              "requirement %s, fee %.5f XTM/member\n\n",
              req.ToString().c_str(), kFeePerMember);

  core::ProgressiveSelector progressive;
  core::GameTheoreticSelector game;
  core::SmallestSelector smallest;
  core::RandomSelector random;
  struct Row {
    const char* name;
    const core::MixinSelector* selector;
  } rows[] = {{"TM_G", &game},
              {"TM_P", &progressive},
              {"TM_S", &smallest},
              {"TM_R", &random}};

  std::printf("%-6s %8s %12s %12s\n", "policy", "spends", "avg ring",
              "fee (XTM)");
  double best_fee = -1.0;
  double worst_fee = -1.0;
  for (const Row& row : rows) {
    Bill bill = RunWallet(ds, *row.selector, req, 20260705);
    double avg = bill.spends > 0 ? static_cast<double>(bill.total_members) /
                                       static_cast<double>(bill.spends)
                                 : 0.0;
    std::printf("%-6s %8zu %12.1f %12.4f\n", row.name, bill.spends, avg,
                bill.fee());
    if (best_fee < 0 || bill.fee() < best_fee) best_fee = bill.fee();
    if (bill.fee() > worst_fee) worst_fee = bill.fee();
  }
  std::printf("\nfee saved by the best policy vs the worst: %.1f%%\n",
              100.0 * (worst_fee - best_fee) / worst_fee);
  return 0;
}
