// RingCT-lite confidential transaction: combines every layer of the
// crypto substrate the way Monero-style chains do —
//   * DA-MS mixin selection hides WHICH token is spent,
//   * an LSAG with key image proves ownership and blocks double spends,
//   * Pedersen commitments hide HOW MUCH is transferred,
//   * a balance proof shows inputs == outputs + fee,
//   * range proofs show no output is negative (no inflation).
#include <cstdio>

#include "common/rng.h"
#include "core/progressive.h"
#include "core/token_magic.h"
#include "crypto/lsag.h"
#include "crypto/pedersen.h"
#include "crypto/range_proof.h"
#include "crypto/sha256.h"

using namespace tokenmagic;

int main() {
  common::Rng rng(777);

  // Chain and selection exactly as in quickstart.
  chain::Blockchain bc;
  for (int b = 0; b < 2; ++b) bc.AddBlock(b, {1, 1, 1, 1, 1, 1, 1, 1});
  core::TokenMagicConfig config;
  config.lambda = 16;
  core::TokenMagic tm(&bc, config);

  std::vector<crypto::Keypair> keys;
  for (size_t i = 0; i < bc.token_count(); ++i) {
    keys.push_back(crypto::Keypair::Generate(&rng));
  }

  const chain::TokenId spend_token = 3;
  core::ProgressiveSelector selector;
  auto rs = tm.GenerateRs(spend_token, {2.0, 3}, selector, &rng);
  if (!rs.ok()) {
    std::printf("selection failed: %s\n", rs.status().ToString().c_str());
    return 1;
  }
  std::printf("ring: %zu members (spend hidden among them)\n",
              rs->members.size());

  // Amounts: the spent token holds 100 units; pay 72, change 25, fee 3.
  crypto::Commitment input = crypto::Pedersen::Commit(100, &rng);
  crypto::Commitment payment = crypto::Pedersen::Commit(72, &rng);
  crypto::Commitment change = crypto::Pedersen::Commit(25, &rng);
  const uint64_t fee = 3;

  auto balance =
      crypto::ConfidentialBalance::Prove({input}, {payment, change}, fee,
                                         &rng);
  if (!balance.ok()) {
    std::printf("balance proof failed: %s\n",
                balance.status().ToString().c_str());
    return 1;
  }
  bool balance_ok = crypto::ConfidentialBalance::Verify(
      {input.point}, {payment.point, change.point}, fee, *balance);
  std::printf("balance proof (in == out + fee): %s\n",
              balance_ok ? "OK" : "FAIL");

  // Range proofs for both outputs (16-bit amounts).
  auto payment_range = crypto::RangeProver::Prove(payment, 16, &rng);
  auto change_range = crypto::RangeProver::Prove(change, 16, &rng);
  if (!payment_range.ok() || !change_range.ok()) {
    std::printf("range proving failed\n");
    return 1;
  }
  bool ranges_ok =
      crypto::RangeProver::Verify(payment.point, *payment_range) &&
      crypto::RangeProver::Verify(change.point, *change_range);
  std::printf("range proofs (outputs in [0, 2^16)): %s\n",
              ranges_ok ? "OK" : "FAIL");

  // Ownership: LSAG over the ring, message binds the commitments.
  std::string message = "ringct-lite";
  {
    crypto::Sha256 hasher;
    hasher.Update(message);
    auto in_enc = input.point.Encode();
    hasher.Update(in_enc.data(), in_enc.size());
    auto pay_enc = payment.point.Encode();
    hasher.Update(pay_enc.data(), pay_enc.size());
    auto chg_enc = change.point.Encode();
    hasher.Update(chg_enc.data(), chg_enc.size());
    auto digest = hasher.Finalize();
    message.assign(reinterpret_cast<const char*>(digest.data()),
                   digest.size());
  }
  std::vector<crypto::Point> ring;
  size_t signer_index = 0;
  for (size_t i = 0; i < rs->members.size(); ++i) {
    ring.push_back(keys[rs->members[i]].pub);
    if (rs->members[i] == spend_token) signer_index = i;
  }
  auto sig = crypto::Lsag::Sign(ring, signer_index, keys[spend_token],
                                message, &rng);
  if (!sig.ok()) {
    std::printf("signing failed\n");
    return 1;
  }
  std::printf("LSAG (ownership + key image): %s\n",
              crypto::Lsag::Verify(*sig, message) ? "OK" : "FAIL");

  // A cheating prover cannot mint: inputs 100 -> outputs 72 + 30 + fee 3.
  crypto::Commitment inflated = crypto::Pedersen::Commit(30, &rng);
  auto cheat = crypto::ConfidentialBalance::Prove(
      {input}, {payment, inflated}, fee, &rng);
  std::printf("inflation attempt (100 -> 72 + 30 + 3): %s\n",
              cheat.ok() ? "ACCEPTED (BUG!)"
                         : cheat.status().ToString().c_str());
  return balance_ok && ranges_ok ? 0 : 1;
}
