// Full-network simulation: several wallets transact through a verifying
// node over multiple blocks, then an external adversary replays the
// public state (ledger + chain only — no wallet secrets) and attempts
// chain-reaction analysis. Demonstrates the complete system the paper
// targets: Step 1 (DA-MS selection) + Step 2 (LSAG) client-side, Step 3
// (verification, both practical configurations) node-side.
#include <cstdio>
#include <vector>

#include "analysis/anonymity.h"
#include "analysis/chain_reaction.h"
#include "core/progressive.h"
#include "node/node.h"
#include "node/wallet.h"

using namespace tokenmagic;

int main() {
  node::NodeConfig config;
  config.lambda = 64;
  node::Node the_node(config);

  // Three wallets, each granted 8 tokens in its own one-token HTs.
  node::Wallet alice("alice", &the_node, 1);
  node::Wallet bob("bob", &the_node, 2);
  node::Wallet carol("carol", &the_node, 3);
  std::vector<node::Wallet*> wallets = {&alice, &bob, &carol};

  std::vector<std::vector<crypto::Point>> grants;
  for (int i = 0; i < 8; ++i) {
    for (node::Wallet* w : wallets) grants.push_back({w->NewOutputKey()});
  }
  auto minted = the_node.Genesis(grants);
  for (size_t g = 0; g < minted.size(); ++g) {
    node::Wallet* owner = wallets[g % wallets.size()];
    for (chain::TokenId t : minted[g]) (void)owner->Claim(t);
  }
  std::printf("genesis: %zu tokens across %zu wallets\n",
              the_node.blockchain().token_count(), wallets.size());

  // Four blocks of economic activity.
  core::ProgressiveSelector selector;
  size_t submitted = 0, rejected = 0;
  for (int block = 0; block < 4; ++block) {
    for (size_t w = 0; w < wallets.size(); ++w) {
      node::Wallet* spender = wallets[w];
      node::Wallet* receiver = wallets[(w + 1) % wallets.size()];
      auto spendable = spender->SpendableTokens();
      if (spendable.empty()) continue;
      auto st = spender->Spend(&the_node, spendable.front(), {2.0, 3},
                               selector, {receiver->NewOutputKey()},
                               "block activity");
      st.ok() ? ++submitted : ++rejected;
    }
    auto mined = the_node.MineBlock();
    std::printf("block %llu: mined %zu txs (mempool drained)\n",
                static_cast<unsigned long long>(mined.height),
                mined.transactions);
    // Receivers claim their fresh outputs.
    for (const auto& outputs : mined.outputs) {
      for (chain::TokenId t : outputs) {
        for (node::Wallet* w : wallets) {
          if (w->Claim(t).ok()) break;
        }
      }
    }
  }
  std::printf("activity: %zu accepted, %zu rejected\n", submitted, rejected);

  // The adversary sees only public state.
  auto views = the_node.ledger().Views();
  auto result = analysis::ChainReactionAnalyzer::Analyze(views);
  auto stats = analysis::SummarizeAnonymity(result);
  std::printf("\nadversary report over %zu rings:\n", views.size());
  std::printf("  fully deanonymized rings: %zu\n", stats.fully_revealed);
  std::printf("  rings with eliminated members: %zu\n",
              stats.with_eliminations);
  std::printf("  mean anonymity set: %.2f tokens (min %.0f)\n",
              stats.mean_anonymity_set, stats.min_anonymity_set);
  std::printf("  mean entropy: %.2f bits\n", stats.mean_entropy_bits);
  return stats.fully_revealed == 0 ? 0 : 1;
}
