// Attack demonstration: chain-reaction analysis and the homogeneity
// attack against two mixin-selection policies.
//
// A population of users spends tokens over time. Under the status-quo
// Monero-style sampler, rings overlap arbitrarily and the adversary's
// cascade + matching analysis steadily eliminates mixins and pins real
// spends. Under TokenMagic's DA-MS selection (first practical
// configuration + recursive diversity), the same adversary learns
// nothing about individual spends.
#include <cstdio>
#include <vector>

#include "analysis/anonymity.h"
#include "analysis/chain_reaction.h"
#include "analysis/homogeneity.h"
#include "chain/ledger.h"
#include "common/rng.h"
#include "core/baselines.h"
#include "core/progressive.h"
#include "core/token_magic.h"

using namespace tokenmagic;

namespace {

struct AttackOutcome {
  size_t rings = 0;
  size_t deanonymized = 0;
  size_t with_eliminations = 0;
  double mean_anonymity = 0.0;
  size_t homogeneity_leaks = 0;
};

AttackOutcome RunScenario(const core::MixinSelector& selector,
                          chain::DiversityRequirement req, uint64_t seed,
                          bool enforce_constraints) {
  // A chain with clustered outputs: 6 transactions x 4 tokens each —
  // clusters make the homogeneity attack realistic.
  chain::Blockchain bc;
  bc.AddBlock(0, {4, 4, 4});
  bc.AddBlock(1, {4, 4, 4});
  core::TokenMagicConfig config;
  config.lambda = 24;
  core::TokenMagic tm(&bc, config);
  common::Rng rng(seed);

  // Spend well over half of the tokens: a realistic mature batch where
  // chain reactions have material to work with.
  std::vector<chain::TokenId> order = bc.AllTokens();
  rng.Shuffle(&order);
  chain::Ledger shadow_ledger;  // for the unconstrained policy
  for (size_t i = 0; i < 16; ++i) {
    chain::TokenId target = order[i];
    if (enforce_constraints) {
      (void)tm.GenerateRs(target, req, selector, &rng);
    } else {
      auto instance = tm.InstanceFor(target, req);
      if (!instance.ok()) continue;
      // Swap in the shadow history: the vector must outlive the Select
      // call (SelectionInput::history is a span), and the framework's
      // context describes the real ledger, not the shadow one.
      std::vector<chain::RsView> shadow_views = shadow_ledger.Views();
      instance->history = shadow_views;
      instance->context = nullptr;
      auto result = selector.Select(*instance, &rng);
      if (!result.ok()) continue;
      (void)shadow_ledger.Propose(result->members, target, req);
    }
  }

  const chain::Ledger& ledger =
      enforce_constraints ? tm.ledger() : shadow_ledger;
  auto views = ledger.Views();
  auto analysis = analysis::ChainReactionAnalyzer::Analyze(views);

  AttackOutcome outcome;
  outcome.rings = views.size();
  auto stats = analysis::SummarizeAnonymity(analysis);
  outcome.mean_anonymity = stats.mean_anonymity_set;
  outcome.with_eliminations = stats.with_eliminations;
  // Deanonymized = analysis pinned the ground-truth spend exactly.
  for (const auto& view : views) {
    auto it = analysis.revealed_spends.find(view.id);
    if (it != analysis.revealed_spends.end() &&
        it->second == ledger.GroundTruthSpent(view.id)) {
      ++outcome.deanonymized;
    }
    // Homogeneity: fold in what the eliminations imply.
    std::unordered_set<chain::TokenId> eliminated(
        analysis.eliminated[view.id].begin(),
        analysis.eliminated[view.id].end());
    auto probe = analysis::ProbeHomogeneity(view.members, eliminated,
                                            tm.ht_index());
    if (probe.ht_determined) ++outcome.homogeneity_leaks;
  }
  return outcome;
}

void Print(const char* label, const AttackOutcome& o) {
  std::printf("%-28s rings=%zu deanonymized=%zu eliminations=%zu "
              "homogeneity_leaks=%zu mean_anonymity_set=%.2f\n",
              label, o.rings, o.deanonymized, o.with_eliminations,
              o.homogeneity_leaks, o.mean_anonymity);
}

}  // namespace

int main() {
  std::printf("adversary: chain-reaction analysis (exact, matching-based) "
              "+ homogeneity probe\n\n");

  // Status quo: small random rings, no diversity/DTRS constraints.
  core::MoneroSelector monero(2);  // thrifty users pick minimal rings
  AttackOutcome naive =
      RunScenario(monero, {1.0, 1}, 99, /*enforce_constraints=*/false);
  Print("Monero-style (ring=2)", naive);

  // DA-MS: TokenMagic + Progressive under recursive (2, 3)-diversity.
  core::ProgressiveSelector progressive;
  AttackOutcome protected_run =
      RunScenario(progressive, {2.0, 3}, 99, /*enforce_constraints=*/true);
  Print("TokenMagic TM_P (2,3)", protected_run);

  std::printf("\nThe DA-MS run must show zero deanonymized spends and "
              "zero homogeneity leaks.\n");
  return (protected_run.deanonymized == 0 &&
          protected_run.homogeneity_leaks == 0)
             ? 0
             : 1;
}
