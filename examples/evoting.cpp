// E-voting scenario (paper Section 1 / Section 7's "Blockvotes" use
// case): each registered voter holds a ballot token; casting a vote
// spends the ballot inside a ring signature so the tally is public but
// the voter-to-ballot link is hidden. Latency matters at the polling
// station (the paper's argument for TM_P over TM_G), so this example
// compares both selectors' latency and ring sizes over a precinct.
#include <cstdio>
#include <vector>

#include "analysis/chain_reaction.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "core/game_theoretic.h"
#include "core/progressive.h"
#include "core/token_magic.h"

using namespace tokenmagic;

int main() {
  // Registration: 4 registrar transactions issue 12 ballots each.
  chain::Blockchain bc;
  bc.AddBlock(0, {12, 12, 12, 12});
  core::TokenMagicConfig config;
  config.lambda = 48;
  core::TokenMagic tm(&bc, config);
  std::printf("precinct: %zu ballots from %zu registrars\n",
              bc.token_count(), bc.transaction_count());

  // Election day: voters cast in arrival order; requirement (2, 3):
  // each vote's anonymity set must span 3+ registrars and never be
  // dominated by one.
  common::Rng rng(2026);
  core::ProgressiveSelector progressive;
  core::GameTheoreticSelector game;

  common::StopWatch watch;
  double progressive_ms = 0.0;
  size_t progressive_votes = 0;
  size_t progressive_ring_tokens = 0;
  std::vector<chain::TokenId> order;
  for (chain::TokenId t = 0; t < bc.token_count(); ++t) order.push_back(t);
  rng.Shuffle(&order);

  for (size_t v = 0; v < 10; ++v) {
    watch.Restart();
    auto generated = tm.GenerateRs(order[v], {2.0, 3}, progressive, &rng);
    progressive_ms += watch.ElapsedMillis();
    if (generated.ok()) {
      ++progressive_votes;
      progressive_ring_tokens += generated->members.size();
    }
  }
  std::printf("TM_P: %zu votes cast, mean ring %.1f ballots, "
              "mean latency %.3f ms/vote\n",
              progressive_votes,
              static_cast<double>(progressive_ring_tokens) /
                  static_cast<double>(progressive_votes),
              progressive_ms / static_cast<double>(progressive_votes));

  // Offline audit: the game-theoretic selector would shave ring sizes at
  // higher latency — measure on fresh instances without committing.
  double game_ms = 0.0;
  size_t game_ring_tokens = 0;
  size_t game_runs = 0;
  for (size_t v = 10; v < 20; ++v) {
    auto instance = tm.InstanceFor(order[v], {2.0, 3});
    if (!instance.ok()) continue;
    watch.Restart();
    auto result = game.Select(*instance, &rng);
    game_ms += watch.ElapsedMillis();
    if (result.ok()) {
      ++game_runs;
      game_ring_tokens += result->members.size();
    }
  }
  if (game_runs > 0) {
    std::printf("TM_G (offline audit): mean ring %.1f ballots, "
                "mean latency %.3f ms/vote\n",
                static_cast<double>(game_ring_tokens) /
                    static_cast<double>(game_runs),
                game_ms / static_cast<double>(game_runs));
  }

  // Coercion resistance check: the public tally reveals no voter.
  auto analysis = analysis::ChainReactionAnalyzer::Analyze(
      tm.ledger().Views());
  std::printf("adversarial audit: %zu votes, %zu deanonymized, "
              "eliminations=%s\n",
              tm.ledger().size(), analysis.revealed_spends.size(),
              analysis.NoTokenEliminated() ? "none" : "SOME");
  return analysis.revealed_spends.empty() ? 0 : 1;
}
